// Unit tests: Selective Suspension and Tunable Selective Suspension
// (Section IV) — including the two-task suspension-count law of Section IV-A
// (Figs. 4-6).
#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "sched/overhead.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

SsConfig ssConfig(double sf) {
  SsConfig cfg;
  cfg.suspensionFactor = sf;
  return cfg;
}

TEST(SS, ConfigRejectsBadValues) {
  SsConfig cfg;
  cfg.suspensionFactor = 0.5;
  EXPECT_THROW(SelectiveSuspension{cfg}, InvariantError);
  cfg = {};
  cfg.preemptionInterval = 0;
  EXPECT_THROW(SelectiveSuspension{cfg}, InvariantError);
}

TEST(SS, NameReflectsTuning) {
  EXPECT_EQ(SelectiveSuspension(ssConfig(2.0)).name(), "SS(SF=2)");
  SsConfig cfg = ssConfig(1.5);
  cfg.tssLimits.emplace();
  cfg.tssLimits->fill(10.0);
  EXPECT_EQ(SelectiveSuspension(cfg).name(), "TSS(SF=1.5)");
}

TEST(SS, SimpleStreamRunsEverything) {
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(8, {{0, 50, 4}, {10, 50, 4}, {20, 50, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  for (JobId i = 0; i < 3; ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(SS, ShortJobPreemptsLongJob) {
  // Long job (estimate 10 h) hogs the machine; a short job (60 s estimate)
  // arrives and its xfactor crosses SF * 1 quickly: it must preempt.
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  // Short job's xfactor reaches 2 after waiting 60 s; the next 60 s tick
  // fires the preemption. It must finish LONG before the long job's end.
  EXPECT_LT(s.exec(1).finish, 1000);
  // The long job still completes (reclaiming its processors).
  EXPECT_GE(s.exec(0).finish, 36000);
}

TEST(SS, PreemptionRequiresPriorityRatio) {
  // Short job with estimate 3600: after 60 s its xfactor is only ~1.016 —
  // far below SF x 1. It must NOT preempt; it waits for the long job.
  // (Long job runtime kept small so the test terminates quickly.)
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 1000, 4}, {10, 900, 4, 3600}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).suspendCount, 0u);
  EXPECT_EQ(s.exec(1).firstStart, 1000);
}

TEST(SS, SuspendedJobResumesOnSameProcessors) {
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator s(trace, policy);
  // Track the victim's processors across suspension.
  s.run();
  EXPECT_EQ(s.exec(0).procs.count(), 4u);  // final set recorded
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
}

TEST(SS, HalfWidthRuleBlocksNarrowPreemptor) {
  // A 1-proc job may not suspend a 4-proc job (1 * 2 < 4), no matter its
  // priority.
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 3000, 4}, {10, 30, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).suspendCount, 0u);
  EXPECT_GE(s.exec(1).firstStart, 3000);
}

TEST(SS, HalfWidthRuleAllowsHalfWidePreemptor) {
  // A 2-proc job may suspend a 4-proc job (2 * 2 >= 4).
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 30, 2}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  EXPECT_LT(s.exec(1).finish, 2000);
}

TEST(SS, HalfWidthRuleCanBeDisabled) {
  SsConfig cfg = ssConfig(2.0);
  cfg.halfWidthRule = false;
  SelectiveSuspension policy(cfg);
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 30, 1}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  EXPECT_LT(s.exec(1).finish, 2000);
}

TEST(SS, BackfillsPastBlockedHighPriorityJob) {
  // Wide queued job cannot start; a narrower lower-priority job that fits
  // must start anyway (backfilling without guarantees).
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(8, {{0, 600, 6}, {10, 600, 8}, {20, 60, 2}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 20);  // started beside job0
}

TEST(SS, TssLimitProtectsVictim) {
  // TSS with a tiny limit for the long job's category: its priority (1.0+)
  // is already >= the limit, so preemption is disabled and the short job
  // must wait despite a huge xfactor.
  SsConfig cfg = ssConfig(2.0);
  cfg.tssLimits.emplace();
  cfg.tssLimits->fill(0.5);  // everything protected immediately
  SelectiveSuspension policy(cfg);
  const auto trace = makeTrace(4, {{0, 2000, 4}, {10, 30, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).suspendCount, 0u);
  EXPECT_GE(s.exec(1).firstStart, 2000);
}

TEST(SS, TssHighLimitBehavesLikePlainSS) {
  SsConfig cfg = ssConfig(2.0);
  cfg.tssLimits.emplace();
  cfg.tssLimits->fill(1e18);
  SelectiveSuspension tuned(cfg);
  SelectiveSuspension plain(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator a(trace, tuned);
  a.run();
  sim::Simulator b(trace, plain);
  b.run();
  EXPECT_EQ(a.exec(1).finish, b.exec(1).finish);
  EXPECT_EQ(a.totalSuspensions(), b.totalSuspensions());
}

TEST(SS, PreemptionsCountedByPolicy) {
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(policy.preemptionsInitiated(), s.totalSuspensions());
  EXPECT_GE(policy.preemptionsInitiated(), 1u);
}

TEST(SS, WidestVictimsChosenFirst) {
  // Preemptor needs 6 procs; eligible victims: 4-proc and two 1-proc jobs
  // (all long, same priority). Suspending the 4-proc + free 2 suffices; the
  // widest-first rule means the pair of 1-proc jobs survives.
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(
      8, {{0, 36000, 4}, {0, 36000, 1}, {0, 36000, 1}, {10, 60, 6}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  EXPECT_EQ(s.exec(1).suspendCount, 0u);
  EXPECT_EQ(s.exec(2).suspendCount, 0u);
}

// --- The two-task analysis of Section IV-A ----------------------------------
//
// Two identical tasks, each needing the whole machine, submitted together.
// With suspension factor s, the number of suspensions n is the smallest n
// with s^(n+1) >= 2  =>  n = ceil(log2 / log s) - 1 (for 1 < s <= 2).
// s = 2 -> 0 suspensions; s = sqrt(2) -> 1; s = 2^(1/3) -> 2.

std::uint64_t twoTaskSuspensions(double sf, Time length) {
  SelectiveSuspension policy(ssConfig(sf));
  const auto trace = makeTrace(8, {{0, length, 8}, {0, length, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  return s.totalSuspensions();
}

TEST(SSTwoTask, SfTwoMeansNoSuspension) {
  EXPECT_EQ(twoTaskSuspensions(2.0, 7200), 0u);
}

TEST(SSTwoTask, SfAboveTwoAlsoNoSuspension) {
  EXPECT_EQ(twoTaskSuspensions(5.0, 7200), 0u);
}

TEST(SSTwoTask, SqrtTwoMeansAtMostOne) {
  // s = sqrt(2): the waiting task preempts once; after the swap the other
  // task would need xfactor ratio sqrt(2) again, which cannot recur before
  // the running task completes.
  const auto n = twoTaskSuspensions(std::sqrt(2.0), 7200);
  EXPECT_EQ(n, 1u);
}

TEST(SSTwoTask, CubeRootOfTwoMeansTwo) {
  const auto n = twoTaskSuspensions(std::cbrt(2.0), 14400);
  EXPECT_EQ(n, 2u);
}

TEST(SSTwoTask, SuspensionCountMonotoneInSf) {
  const Time len = 7200;
  std::uint64_t prev = 1000;
  for (double sf : {1.1, 1.26, 1.42, 2.0}) {
    const auto n = twoTaskSuspensions(sf, len);
    EXPECT_LE(n, prev) << "sf=" << sf;
    prev = n;
  }
}

TEST(SSTwoTask, BothTasksFinishAndAlternate) {
  SelectiveSuspension policy(ssConfig(1.2));
  const auto trace = makeTrace(8, {{0, 3600, 8}, {0, 3600, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  // Total work conserved: last finish >= 2 x length.
  EXPECT_GE(s.lastFinish(), 7200);
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
  EXPECT_EQ(s.state(1), sim::JobState::Finished);
}

// --- Reentry (Section IV-C) --------------------------------------------------

TEST(SSReentry, SuspendedJobPreemptsOccupantOfItsProcessors) {
  // Long job A runs on the whole machine, short job B preempts it. While A
  // is suspended, medium job C (arriving later) takes over when B finishes.
  // A's xfactor keeps growing; eventually A preempts C through the reentry
  // path (no half-width requirement) and completes.
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace =
      makeTrace(4, {{0, 7200, 4}, {10, 60, 4}, {500, 7000, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  // If A reentered by preempting C, C was suspended at least once.
  // (A could also simply wait for C to finish; accept either, but the sum
  // of completions must conserve work.)
  EXPECT_GE(s.lastFinish(), 7200 + 60);
}

TEST(SSReentry, ExactProcessorSetReclaimed) {
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(8, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  // Victim held processors {0-3}; after resume and completion its recorded
  // set must still be {0-3}.
  EXPECT_EQ(s.exec(0).procs, sim::ProcSet::firstN(4));
}

// --- Claims under an overhead model ------------------------------------------

TEST(SSOverhead, PreemptorWaitsForDrainThenStarts) {
  FixedOverhead overhead(30, 30);
  SelectiveSuspension policy(ssConfig(2.0));
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator::Config config;
  config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  // The short job ran after the 30 s write-out of the victim.
  EXPECT_GT(s.exec(1).firstStart, s.job(1).submit);
  EXPECT_EQ(s.state(1), sim::JobState::Finished);
  // Victim paid write-out + read-back.
  EXPECT_GE(s.exec(0).overheadTotal(), 60);
}

TEST(SSOverhead, EverythingFinishesUnderHeavyPreemption) {
  FixedOverhead overhead(10, 10);
  SelectiveSuspension policy(ssConfig(1.5));
  std::vector<J> jobs;
  jobs.push_back({0, 20000, 8});
  for (int i = 0; i < 10; ++i) jobs.push_back({100 + i * 400, 50, 4});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator::Config config;
  config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  s.run();
  for (JobId i = 0; i < trace.jobs.size(); ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
  s.auditState();
}

}  // namespace
}  // namespace sps::sched
