// Scale-out smoke: a 100k-processor machine under every policy token, both
// kernel modes, with the full sps::check oracle armed — the ctest face of
// ROADMAP item 2's acceptance bar (the 1M-job endurance version of this run
// lives in DESIGN.md's scale-out notes; this one keeps the job count small
// enough for the tier-1 suite).
#include <gtest/gtest.h>

#include "check/check_config.hpp"
#include "check/diff_harness.hpp"
#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "sched/policy_factory.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

const workload::Trace& scaleTrace() {
  static const workload::Trace trace = [] {
    auto cfg = workload::scaledToMachine(workload::sdscConfig(400, 11),
                                         100'000);
    cfg.offeredLoad = 0.95;
    return workload::generateTrace(cfg);
  }();
  return trace;
}

class ScalePolicy : public ::testing::TestWithParam<std::string> {};

TEST_P(ScalePolicy, HundredThousandProcsBothKernelModesChecked) {
  const workload::Trace& trace = scaleTrace();
  core::PolicySpec spec = check::policyFromToken(GetParam());
  if (GetParam().rfind("tss:", 0) == 0)
    spec.ss.tssLimits = core::bootstrapTssLimits(trace);
  core::SimulationOptions options;
  options.check = check::CheckConfig::all();
  for (const auto mode : {sched::kernel::KernelMode::Incremental,
                          sched::kernel::KernelMode::Rebuild}) {
    const metrics::RunStats stats = core::runSimulation(
        trace, sched::withKernelMode(spec, mode), options);
    EXPECT_EQ(stats.jobs.size(), trace.jobs.size());
    EXPECT_GT(stats.eventsProcessed, trace.jobs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tokens, ScalePolicy,
    ::testing::ValuesIn(sched::knownPolicyTokens()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == ':' || c == '-' || c == '.') c = '_';
      return name;
    });

}  // namespace
}  // namespace sps
