// The steppable-core / streaming-ingest suite (ctest label: service).
//
// Pins the tentpole contracts of the online scheduler mode:
//  * step()/runUntil()/drain() paused-state semantics;
//  * submit()/cancelJob() ingest verbs (ordering, rejection, lifecycle);
//  * batch vs streamed golden equivalence for every policy token under
//    both kernel modes — schedules AND rendered metrics, bit for bit;
//  * SchedulerService protocol parsing, replies, and the threaded serve()
//    driver (the lane to re-run under -DSPS_SANITIZE=thread).
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/check_config.hpp"
#include "check/diff_harness.hpp"
#include "check/invariants.hpp"
#include "core/scheduler_service.hpp"
#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/openmetrics.hpp"
#include "sched/fcfs.hpp"
#include "sched/policy_factory.hpp"
#include "util/check.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using test::J;
using test::makeTrace;

workload::Job job(Time submit, Time runtime, std::uint32_t procs,
                  Time estimate = 0) {
  workload::Job j;
  j.submit = submit;
  j.runtime = runtime;
  j.estimate = estimate == 0 ? runtime : estimate;
  j.procs = procs;
  return j;
}

// --- steppable core --------------------------------------------------------

TEST(SteppableCore, StepDispatchesOneEventAndReportsNext) {
  const auto trace = makeTrace(4, {{0, 100, 4}, {50, 10, 1}});
  sched::FcfsScheduler policy;
  sim::Simulator s(trace, policy, {});
  EXPECT_FALSE(s.drained());
  EXPECT_EQ(s.nextEventTime(), 0);
  EXPECT_TRUE(s.step());  // job 0 arrival: starts immediately
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.state(0), sim::JobState::Running);
  EXPECT_EQ(s.nextEventTime(), 50);  // job 1 arrival precedes completion
  EXPECT_TRUE(s.step());
  EXPECT_EQ(s.state(1), sim::JobState::Queued);
  while (s.step()) {
  }
  EXPECT_EQ(s.nextEventTime(), kNoTime);
  EXPECT_EQ(s.unfinishedJobs(), 0u);
  EXPECT_FALSE(s.drained());  // drained only after an explicit drain()
  s.drain();
  EXPECT_TRUE(s.drained());
  EXPECT_EQ(s.exec(1).firstStart, 100);
}

TEST(SteppableCore, RunUntilPausesAtHorizonAndResumes) {
  const auto trace = makeTrace(2, {{0, 100, 2}, {10, 100, 2}, {20, 100, 2}});
  sched::FcfsScheduler policy;
  sim::Simulator s(trace, policy, {});
  s.runUntil(150);  // job0 done at 100, job1 running until 200
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
  EXPECT_EQ(s.state(1), sim::JobState::Running);
  EXPECT_EQ(s.state(2), sim::JobState::Queued);
  EXPECT_LE(s.now(), 150);
  s.runUntil(150);  // idempotent at the same horizon
  EXPECT_EQ(s.state(2), sim::JobState::Queued);
  s.drain();
  EXPECT_TRUE(s.drained());
  EXPECT_EQ(s.exec(2).finish, 300);
  EXPECT_EQ(s.lastFinish(), 300);
}

TEST(SteppableCore, RunIsRunUntilPlusDrain) {
  const auto trace = makeTrace(4, {{0, 50, 2}, {5, 50, 2}, {10, 50, 4}});
  sched::FcfsScheduler a;
  sched::FcfsScheduler b;
  sim::Simulator whole(trace, a, {});
  whole.run();
  sim::Simulator pieces(trace, b, {});
  pieces.runUntil(kTimeMax);
  pieces.drain();
  for (JobId id = 0; id < trace.jobs.size(); ++id) {
    EXPECT_EQ(whole.exec(id).firstStart, pieces.exec(id).firstStart);
    EXPECT_EQ(whole.exec(id).finish, pieces.exec(id).finish);
  }
}

// --- ingest boundary -------------------------------------------------------

TEST(Ingest, SubmitAtExactStepBoundaryMatchesBatchOrder) {
  // Job 0 completes at exactly t=100; the streamed injection of job 1 with
  // submit == 100 must be enqueued before the completion dispatches (the
  // driver contract: submit everything at T before dispatching T). The
  // arrivals-first event band then fires the arrival ahead of the
  // completion, exactly as the batch run orders them.
  sched::FcfsScheduler policy;
  sim::Simulator s("boundary", 4, policy, {});
  s.submit(job(0, 100, 4));
  s.runUntil(99);
  EXPECT_EQ(s.state(0), sim::JobState::Running);
  s.submit(job(100, 50, 4));
  s.drain();
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(1).finish, 150);
}

TEST(Ingest, OutOfOrderSubmitRejectedWithoutStateChange) {
  sched::FcfsScheduler policy;
  sim::Simulator s("order", 4, policy, {});
  s.submit(job(100, 100, 1));
  EXPECT_THROW(s.submit(job(50, 10, 1)), InputError);
  // A submit in the simulated past (the clock reached 200 when job 0
  // finished) is rejected even though it respects the stream order seen so
  // far.
  s.runUntil(250);
  ASSERT_EQ(s.now(), 200);
  EXPECT_THROW(s.submit(job(150, 10, 1)), InputError);
  EXPECT_EQ(s.trace().jobs.size(), 1u);  // the rejects left no residue
  s.submit(job(300, 10, 1));             // the stream continues fine
  s.drain();
  EXPECT_EQ(s.unfinishedJobs(), 0u);
}

TEST(Ingest, SubmitValidatesJobShape) {
  sched::FcfsScheduler policy;
  sim::Simulator s("shape", 4, policy, {});
  EXPECT_THROW(s.submit(job(0, 0, 1)), InputError);       // runtime <= 0
  EXPECT_THROW(s.submit(job(0, 10, 0)), InputError);      // procs == 0
  EXPECT_THROW(s.submit(job(0, 10, 5)), InputError);      // procs > machine
  EXPECT_THROW(s.submit(job(0, 10, 1, 5)), InputError);   // estimate < runtime
}

TEST(Ingest, CancelQueuedJobReleasesItBeforeStart) {
  sched::FcfsScheduler policy;
  sim::Simulator s("cancel-queued", 4, policy, {});
  check::InvariantChecker checker{check::CheckConfig::all(1)};
  checker.arm(s, policy);
  s.submit(job(0, 100, 4));
  s.submit(job(0, 100, 4));
  s.submit(job(0, 50, 4));
  s.runUntil(10);
  EXPECT_EQ(s.state(1), sim::JobState::Queued);
  EXPECT_TRUE(s.cancelJob(1));
  EXPECT_EQ(s.state(1), sim::JobState::Cancelled);
  EXPECT_FALSE(s.cancelJob(1));  // terminal: a second cancel is a no-op
  s.drain();
  checker.finalize(s);
  // FCFS head removal unblocked job 2 into the slot job 1 vacated.
  EXPECT_EQ(s.exec(1).firstStart, kNoTime);
  EXPECT_EQ(s.exec(2).firstStart, 100);
}

TEST(Ingest, CancelRunningJobRejected) {
  sched::FcfsScheduler policy;
  sim::Simulator s("cancel-running", 4, policy, {});
  s.submit(job(0, 100, 4));
  s.runUntil(10);
  EXPECT_EQ(s.state(0), sim::JobState::Running);
  EXPECT_FALSE(s.cancelJob(0));  // a kill, not a cancel
  s.drain();
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
}

TEST(Ingest, CancelNotArrivedJobWorksUnderAnyPolicy) {
  // Conservative cannot repair its reservation calendar mid-flight
  // (supportsCancel() == false), but a NotArrived job holds no policy
  // state yet — cancelling it only voids the pending arrival.
  auto spec = sched::specFromToken("conservative");
  const auto policy = core::makePolicy(spec);
  sim::Simulator s("cancel-future", 4, *policy, {});
  s.submit(job(0, 100, 4));
  s.submit(job(500, 100, 4));
  EXPECT_TRUE(s.cancelJob(1));
  EXPECT_EQ(s.state(1), sim::JobState::Cancelled);
  s.runUntil(50);
  EXPECT_EQ(s.state(0), sim::JobState::Running);
  // A QUEUED cancel is where conservative must refuse.
  s.submit(job(600, 100, 4));
  s.submit(job(600, 100, 4));
  s.runUntil(650);  // job 2 running until 700; job 3 waiting behind it
  EXPECT_EQ(s.state(3), sim::JobState::Queued);
  EXPECT_FALSE(s.cancelJob(3));
  s.drain();
  EXPECT_EQ(s.unfinishedJobs(), 0u);
}

TEST(Ingest, CancelSuspendedJobUnderSelectiveSuspension) {
  // A wide long job gets preempted by a narrow short one (SF test passes
  // once the short job's expansion factor doubles the long one's), then the
  // suspended victim is cancelled — its owed processors must be released
  // and the run must drain cleanly with the oracle armed.
  auto spec = sched::specFromToken("ss:2");
  const auto policy = core::makePolicy(spec);
  sim::Simulator s("cancel-suspended", 2, *policy, {});
  check::InvariantChecker checker{check::CheckConfig::all(1)};
  checker.arm(s, *policy);
  s.submit(job(0, 50000, 2));
  s.submit(job(10, 60, 1));
  Time cancelled = kNoTime;
  while (s.step()) {
    if (s.state(0) == sim::JobState::Suspended) {
      ASSERT_TRUE(s.cancelJob(0));
      cancelled = s.now();
      break;
    }
  }
  ASSERT_NE(cancelled, kNoTime) << "expected job 0 to be suspended";
  EXPECT_EQ(s.state(0), sim::JobState::Cancelled);
  s.drain();
  checker.finalize(s);
  EXPECT_EQ(s.state(1), sim::JobState::Finished);
}

// --- golden equivalence: batch vs streamed ---------------------------------

/// Streamed replay must be bit-identical to batch for every policy token
/// under both kernel modes. DiffHarness::diffStreamed carries the whole
/// contract: transitions, per-job exec records, and the armed oracle.
TEST(StreamedEquivalence, AllPolicyTokensBothKernelModes) {
  const check::DiffHarness harness{check::CheckConfig::all(4)};
  for (const bool overhead : {false, true}) {
    check::FuzzCase c;
    c.trace = workload::generateTrace(workload::ctcConfig(160, 11));
    c.overhead = overhead;
    for (const std::string& token : check::fuzzPolicyTokens()) {
      c.policyToken = token;
      const check::DiffOutcome outcome = harness.diffStreamed(c, 99);
      EXPECT_TRUE(outcome.ok())
          << token << (overhead ? " (overhead)" : "") << ": "
          << outcome.divergence << outcome.violation;
    }
  }
}

TEST(StreamedEquivalence, SdscTraceThroughRunSimulationOverload) {
  // The public streaming overload (per-job minimum-lookahead pump) must
  // render the same metrics document as the batch entry point — gauges,
  // counters, and quantile summaries all equal, which implies the
  // schedules and counter streams matched exactly.
  const auto trace = workload::generateTrace(workload::sdscConfig(200, 5));
  for (const char* token : {"easy", "ss:2", "gang", "conservative"}) {
    core::PolicySpec spec = sched::specFromToken(token);
    core::SimulationOptions options;
    options.check = check::CheckConfig::all(8);
    const metrics::RunStats batch =
        core::runSimulation(trace, spec, options);
    core::TraceSource source(trace);
    const metrics::RunStats streamed =
        core::runSimulation(source, spec, options);
    EXPECT_EQ(metrics::openMetrics(batch), metrics::openMetrics(streamed))
        << token;
  }
}

// --- SchedulerService protocol --------------------------------------------

core::ServiceConfig easyService(std::uint32_t procs) {
  core::ServiceConfig cfg;
  cfg.machineProcs = procs;
  cfg.spec = sched::specFromToken("easy");
  cfg.options.check = check::CheckConfig::all(1);
  return cfg;
}

TEST(SchedulerService, ProtocolVerbsAndReplies) {
  core::SchedulerService service(easyService(8));
  EXPECT_EQ(service.processLine("submit 0 4 100 100"), "ok 0");
  EXPECT_EQ(service.processLine("submit 0 2 50 60"), "ok 1");
  EXPECT_EQ(service.processLine(""), "");           // blank: no reply
  EXPECT_EQ(service.processLine("# comment"), "");  // comment: no reply
  EXPECT_EQ(service.processLine("stats"),
            "ok now 0 events 0 submitted 2 unfinished 2 free 8");
  EXPECT_EQ(service.processLine("query 1"),
            "ok job 1 state NotArrived submit 0 start - finish -");
  EXPECT_EQ(service.processLine("submit 200 8 100 100 512"), "ok 2");
  EXPECT_EQ(service.processLine("cancel 2"), "ok cancelled 2");
  EXPECT_EQ(service.processLine("query 2"),
            "ok job 2 state Cancelled submit 200 start - finish -");
  const std::string drained = service.processLine("drain");
  EXPECT_EQ(drained.rfind("ok drained jobs 2 ", 0), 0u) << drained;
  EXPECT_TRUE(service.drained());
  EXPECT_EQ(service.submissions(), 3u);
}

TEST(SchedulerService, ErrorRepliesNeverThrow) {
  core::SchedulerService service(easyService(4));
  EXPECT_EQ(service.processLine("launch 1 2 3").rfind("err parse:", 0), 0u);
  EXPECT_EQ(service.processLine("submit nope").rfind("err submit:", 0), 0u);
  EXPECT_EQ(service.processLine("submit 0 9 10 10").rfind("err submit:", 0),
            0u);  // procs > machine
  EXPECT_EQ(service.processLine("cancel 7").rfind("err cancel:", 0), 0u);
  EXPECT_EQ(service.processLine("query 7").rfind("err query:", 0), 0u);
  ASSERT_EQ(service.processLine("submit 100 1 10 10"), "ok 0");
  EXPECT_EQ(service.processLine("submit 50 1 10 10").rfind("err submit:", 0),
            0u);  // out of order
  (void)service.processLine("drain");
  EXPECT_EQ(service.processLine("submit 500 1 10 10")
                .rfind("err submit: run already drained", 0),
            0u);
  EXPECT_EQ(service.processLine("drain").rfind("err drain:", 0), 0u);
}

TEST(SchedulerService, ServeDrivesThreadedReaderToSameResultAsBatch) {
  // Format a synthetic trace as protocol lines, serve it through the
  // reader-thread/bounded-queue driver, and require the rendered metrics
  // to equal the batch run of the same trace — the service-level golden
  // equivalence (and the TSan target for the ingest hand-off).
  auto config = workload::sdscConfig(150, 17);
  const auto trace = workload::generateTrace(config);
  core::PolicySpec spec = sched::specFromToken("ss:2");

  std::ostringstream script;
  for (const workload::Job& j : trace.jobs)
    script << "submit " << j.submit << " " << j.procs << " " << j.runtime
           << " " << j.estimate << " " << j.memoryMb << "\n";
  script << "drain\n";

  core::ServiceConfig cfg;
  cfg.traceName = trace.name;
  cfg.machineProcs = trace.machineProcs;
  cfg.spec = spec;
  cfg.options.check = check::CheckConfig::all(8);
  core::SchedulerService service(std::move(cfg));
  std::istringstream in(script.str());
  std::ostringstream out;
  const metrics::RunStats streamed = service.serve(in, out);

  // Every submit answered ok, in order.
  std::istringstream replies(out.str());
  std::string line;
  for (JobId id = 0; id < trace.jobs.size(); ++id) {
    ASSERT_TRUE(std::getline(replies, line));
    EXPECT_EQ(line, "ok " + std::to_string(id));
  }
  ASSERT_TRUE(std::getline(replies, line));
  EXPECT_EQ(line.rfind("ok drained ", 0), 0u);

  core::SimulationOptions options;
  options.check = check::CheckConfig::all(8);
  const metrics::RunStats batch = core::runSimulation(trace, spec, options);
  EXPECT_EQ(metrics::openMetrics(batch), metrics::openMetrics(streamed));
}

TEST(SchedulerService, FinishIsImplicitAtEndOfInputAndIdempotent) {
  core::SchedulerService service(easyService(4));
  std::istringstream in("submit 0 4 100 100\nsubmit 50 2 10 10\n");
  std::ostringstream out;
  const metrics::RunStats stats = service.serve(in, out);  // no drain verb
  EXPECT_TRUE(service.drained());
  EXPECT_EQ(stats.jobs.size(), 2u);
  const metrics::RunStats again = service.finish();
  EXPECT_EQ(stats.eventsProcessed, again.eventsProcessed);
  std::string error;
  EXPECT_TRUE(metrics::validateOpenMetrics(metrics::openMetrics(stats),
                                           &error))
      << error;
}

TEST(SchedulerService, RejectsZeroProcMachine) {
  core::ServiceConfig cfg;
  cfg.machineProcs = 0;
  cfg.spec = sched::specFromToken("fcfs");
  EXPECT_THROW(core::SchedulerService service(std::move(cfg)), InputError);
}

}  // namespace
}  // namespace sps
