// Unit tests: extension features — SJF-backfill queue order, migratable
// preemption, online-adaptive TSS, diurnal arrivals, trace summaries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/category_stats.hpp"
#include "sched/easy.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/simulator.hpp"
#include "workload/estimate_model.hpp"
#include "workload/summary.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using test::J;
using test::makeTrace;

// --- SJF-backfill ------------------------------------------------------------

TEST(SjfBackfill, ShortestEstimateJumpsTheQueue) {
  sched::EasyConfig cfg;
  cfg.order = sched::QueueOrder::ShortestFirst;
  sched::EasyBackfill policy(cfg);
  // Machine busy until 1000; then three queued jobs with distinct estimates
  // must start shortest-first regardless of submission order.
  const auto trace = makeTrace(
      4, {{0, 1000, 4}, {1, 500, 4}, {2, 100, 4}, {3, 300, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(2).firstStart, 1000);  // 100 s job first
  EXPECT_EQ(s.exec(3).firstStart, 1100);  // then 300 s
  EXPECT_EQ(s.exec(1).firstStart, 1400);  // then 500 s
}

TEST(SjfBackfill, FcfsOrderUnchangedByDefault) {
  sched::EasyBackfill policy;  // default FCFS
  const auto trace = makeTrace(
      4, {{0, 1000, 4}, {1, 500, 4}, {2, 100, 4}, {3, 300, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 1000);
  EXPECT_EQ(s.exec(2).firstStart, 1500);
  EXPECT_EQ(s.exec(3).firstStart, 1600);
}

TEST(SjfBackfill, NameReflectsOrder) {
  sched::EasyConfig cfg;
  cfg.order = sched::QueueOrder::ShortestFirst;
  EXPECT_EQ(sched::EasyBackfill(cfg).name(), "SJF-BF");
  EXPECT_EQ(sched::EasyBackfill().name(), "EASY (NS)");
}

TEST(SjfBackfill, BeatsFcfsOnAverageSlowdown) {
  const auto trace = workload::generateTrace(workload::sdscConfig(2000, 77));
  core::PolicySpec fcfs;
  fcfs.kind = core::PolicyKind::Easy;
  core::PolicySpec sjf = fcfs;
  sjf.easy.order = sched::QueueOrder::ShortestFirst;
  const auto a = core::runSimulation(trace, fcfs);
  const auto b = core::runSimulation(trace, sjf);
  EXPECT_LT(b.meanBoundedSlowdown(), a.meanBoundedSlowdown());
}

// --- migratable preemption ---------------------------------------------------

TEST(Migration, SuspendedJobRestartsOnDifferentProcessors) {
  // Long job on procs {0-3}; short job preempts it; meanwhile another job
  // occupies {0-3}; with migration the long job resumes elsewhere instead
  // of waiting.
  sched::SsConfig cfg;
  cfg.migratableJobs = true;
  sched::SelectiveSuspension policy(cfg);
  const auto trace =
      makeTrace(8, {{0, 7200, 4}, {10, 60, 4}, {11, 7200, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  for (JobId i = 0; i < 3; ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(Migration, NeverWorseCompletionThanLocalOnCongestedTrace) {
  const auto trace = workload::generateTrace(workload::sdscConfig(1500, 99));
  core::PolicySpec local;
  local.kind = core::PolicyKind::SelectiveSuspension;
  core::PolicySpec migrate = local;
  migrate.ss.migratableJobs = true;
  const auto a = core::runSimulation(trace, local);
  const auto b = core::runSimulation(trace, migrate);
  // Migration removes the exact-set constraint: mean turnaround should not
  // be materially worse (allow 10% noise).
  EXPECT_LT(b.meanTurnaround(), a.meanTurnaround() * 1.10);
}

TEST(Migration, AllInvariantsHoldUnderMigration) {
  sched::SsConfig cfg;
  cfg.migratableJobs = true;
  cfg.suspensionFactor = 1.5;
  sched::SelectiveSuspension policy(cfg);
  std::vector<J> jobs;
  for (int i = 0; i < 50; ++i)
    jobs.push_back({i * 60, (i % 6 == 0) ? Time{5000} : Time{200},
                    static_cast<std::uint32_t>(1 + (i % 8))});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  s.auditState();
  for (JobId i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
    EXPECT_EQ(s.exec(i).remainingWork, 0);
  }
}

// --- online-adaptive TSS -----------------------------------------------------

TEST(OnlineTss, MutuallyExclusiveWithStaticLimits) {
  sched::SsConfig cfg;
  cfg.tssLimits.emplace();
  cfg.tssOnlineMultiplier = 1.5;
  EXPECT_THROW(sched::SelectiveSuspension{cfg}, InvariantError);
}

TEST(OnlineTss, RejectsNonPositiveMultiplier) {
  sched::SsConfig cfg;
  cfg.tssOnlineMultiplier = 0.0;
  EXPECT_THROW(sched::SelectiveSuspension{cfg}, InvariantError);
}

TEST(OnlineTss, NameDistinguishesMode) {
  sched::SsConfig cfg;
  cfg.tssOnlineMultiplier = 1.5;
  EXPECT_EQ(sched::SelectiveSuspension(cfg).name(), "TSS-online(SF=2)");
}

TEST(OnlineTss, NoProtectionBeforeMinSamples) {
  // Two jobs only: far below tssOnlineMinSamples, so behaviour must be
  // identical to plain SS (the short job preempts).
  sched::SsConfig cfg;
  cfg.tssOnlineMultiplier = 1.5;
  sched::SelectiveSuspension policy(cfg);
  const auto trace = makeTrace(4, {{0, 36000, 4}, {10, 60, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
}

TEST(OnlineTss, ConvergesToFewerSuspensionsThanPlainSs) {
  const auto trace = workload::generateTrace(workload::sdscConfig(2500, 55));
  core::PolicySpec ss;
  ss.kind = core::PolicyKind::SelectiveSuspension;
  core::PolicySpec online = ss;
  online.ss.tssOnlineMultiplier = 1.5;
  const auto a = core::runSimulation(trace, ss);
  const auto b = core::runSimulation(trace, online);
  EXPECT_LT(b.suspensions, a.suspensions);
  // And the averages stay in the same regime.
  EXPECT_LT(b.meanBoundedSlowdown(), a.meanBoundedSlowdown() * 2.0 + 2.0);
}

// --- diurnal arrivals ----------------------------------------------------------

TEST(Diurnal, ZeroAmplitudeMatchesHomogeneous) {
  auto a = workload::sdscConfig(800, 5);
  auto b = a;
  b.diurnalAmplitude = 0.0;
  const auto ta = generateTrace(a);
  const auto tb = generateTrace(b);
  for (std::size_t i = 0; i < ta.jobs.size(); ++i)
    EXPECT_EQ(ta.jobs[i].submit, tb.jobs[i].submit);
}

TEST(Diurnal, AmplitudeValidated) {
  auto cfg = workload::sdscConfig(10, 1);
  cfg.diurnalAmplitude = 1.0;
  EXPECT_THROW(generateTrace(cfg), InvariantError);
  cfg.diurnalAmplitude = -0.1;
  EXPECT_THROW(generateTrace(cfg), InvariantError);
}

TEST(Diurnal, PreservesOfferedLoad) {
  auto cfg = workload::sdscConfig(6000, 7);
  cfg.diurnalAmplitude = 0.8;
  const auto trace = generateTrace(cfg);
  EXPECT_NEAR(offeredLoad(trace), cfg.offeredLoad, 0.06);
  EXPECT_NO_THROW(validateTrace(trace));
}

TEST(Diurnal, ArrivalsConcentrateInPeakHalfDay) {
  auto cfg = workload::sdscConfig(8000, 9);
  cfg.diurnalAmplitude = 0.9;
  const auto trace = generateTrace(cfg);
  // sin > 0 on the first half of each day: with A = 0.9 the peak half must
  // hold well over half the arrivals.
  std::size_t peak = 0;
  for (const auto& j : trace.jobs)
    if (j.submit % kDay < kDay / 2) ++peak;
  EXPECT_GT(static_cast<double>(peak) / static_cast<double>(trace.jobs.size()),
            0.6);
}

// --- trace summary -------------------------------------------------------------

TEST(Summary, EmptyTrace) {
  workload::Trace t;
  t.machineProcs = 8;
  const auto s = workload::summarizeTrace(t);
  EXPECT_EQ(s.jobCount, 0u);
  EXPECT_DOUBLE_EQ(s.totalWork, 0.0);
}

TEST(Summary, BasicAggregates) {
  const auto trace = makeTrace(64, {{0, 100, 2}, {50, 200, 4}, {150, 50, 1}});
  const auto s = workload::summarizeTrace(trace);
  EXPECT_EQ(s.jobCount, 3u);
  EXPECT_DOUBLE_EQ(s.totalWork, 100.0 * 2 + 200.0 * 4 + 50.0 * 1);
  EXPECT_EQ(s.span, 150);
  EXPECT_DOUBLE_EQ(s.runtimes.min(), 50.0);
  EXPECT_DOUBLE_EQ(s.runtimes.max(), 200.0);
  EXPECT_DOUBLE_EQ(s.widths.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.interarrivals.values()[0], 0.0);  // first gap is 0
  EXPECT_DOUBLE_EQ(s.interarrivals.max(), 100.0);
}

TEST(Summary, SharesSumToHundred) {
  const auto trace = workload::generateTrace(workload::ctcConfig(2000, 3));
  const auto s = workload::summarizeTrace(trace);
  double jobs = 0, work = 0;
  for (std::size_t c = 0; c < workload::kNumCategories16; ++c) {
    jobs += s.jobShare[c];
    work += s.workShare[c];
  }
  EXPECT_NEAR(jobs, 100.0, 1e-9);
  EXPECT_NEAR(work, 100.0, 1e-9);
}

TEST(Summary, WorkConcentratesInLongWideCells) {
  // The work-share insight: VS cells dominate job counts but L/VL dominate
  // the machine time.
  const auto trace = workload::generateTrace(workload::ctcConfig(4000, 11));
  const auto s = workload::summarizeTrace(trace);
  double vsJobs = 0, vsWork = 0, longWork = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    vsJobs += s.jobShare[w];
    vsWork += s.workShare[w];
    longWork += s.workShare[8 + w] + s.workShare[12 + w];
  }
  EXPECT_GT(vsJobs, 30.0);   // ~44% of jobs
  EXPECT_LT(vsWork, 10.0);   // but a sliver of the work
  EXPECT_GT(longWork, 60.0); // the machine's time goes to L/VL
}

TEST(Summary, TablesRender) {
  const auto trace = workload::generateTrace(workload::sdscConfig(500, 13));
  const auto s = workload::summarizeTrace(trace);
  const std::string stats = workload::summaryStatsTable(s).toAscii();
  EXPECT_NE(stats.find("runtime (s)"), std::string::npos);
  EXPECT_NE(stats.find("estimate / runtime"), std::string::npos);
  const std::string grid = workload::workShareGrid(s).toAscii();
  EXPECT_NE(grid.find("VL"), std::string::npos);
  EXPECT_NE(grid.find("%"), std::string::npos);
}

TEST(Summary, EstimateFactorsReflectModel) {
  auto trace = workload::generateTrace(workload::sdscConfig(1000, 17));
  auto s = workload::summarizeTrace(trace);
  EXPECT_DOUBLE_EQ(s.estimateFactors.max(), 1.0);  // accurate by default
  workload::EstimateModelConfig est;
  est.kind = workload::EstimateModelKind::Modal;
  applyEstimates(trace, est);
  s = workload::summarizeTrace(trace);
  EXPECT_GT(s.estimateFactors.max(), 2.0);
}

// --- gang via the core facade ---------------------------------------------------

TEST(CoreGang, FactoryBuildsGang) {
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Gang;
  spec.gang.maxSlots = 3;
  EXPECT_EQ(core::makePolicy(spec)->name(), "Gang(slots=3)");
  EXPECT_STREQ(core::policyKindName(core::PolicyKind::Gang), "Gang");
}

TEST(CoreGang, EndToEndOnSyntheticTrace) {
  const auto trace = workload::generateTrace(workload::sdscConfig(1200, 21));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Gang;
  const auto stats = core::runSimulation(trace, spec);
  EXPECT_EQ(stats.jobs.size(), trace.jobs.size());
  for (const auto& j : stats.jobs) EXPECT_GE(j.finish, j.submit + j.runtime);
}

}  // namespace
}  // namespace sps
