// Unit tests: sim::Simulator — job lifecycle, wait/xfactor accounting,
// suspension mechanics, overhead phases, invariant audits.
#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "sched/overhead.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::sim {
namespace {

using test::J;
using test::ScriptedPolicy;
using test::makeTrace;

TEST(Simulator, SingleJobRunsToCompletion) {
  const auto trace = makeTrace(4, {{0, 100, 2}});
  ScriptedPolicy policy;
  Simulator s(trace, policy);
  s.run();
  const JobExec& x = s.exec(0);
  EXPECT_EQ(s.state(0), JobState::Finished);
  EXPECT_EQ(x.firstStart, 0);
  EXPECT_EQ(x.finish, 100);
  EXPECT_EQ(x.suspendCount, 0u);
  EXPECT_EQ(s.lastFinish(), 100);
}

TEST(Simulator, QueuedJobWaitsForProcessors) {
  // Two 4-proc jobs on a 4-proc machine: strictly serial.
  const auto trace = makeTrace(4, {{0, 100, 4}, {10, 50, 4}});
  ScriptedPolicy policy;
  Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 100);
  EXPECT_EQ(s.exec(1).firstStart, 100);
  EXPECT_EQ(s.exec(1).finish, 150);
}

TEST(Simulator, AccumulatedWaitFrozenWhileRunning) {
  const auto trace = makeTrace(4, {{0, 100, 4}, {10, 50, 4}});
  ScriptedPolicy policy;
  Time waitAtStart = -1;
  policy.completion = [&](Simulator& s, JobId) {
    ScriptedPolicy::greedy(s);
    if (s.state(1) == JobState::Running)
      waitAtStart = s.accumulatedWait(1);
  };
  Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(waitAtStart, 90);          // waited 10..100
  EXPECT_EQ(s.accumulatedWait(1), 90); // still frozen at completion
}

TEST(Simulator, XfactorUsesEstimate) {
  // Job 1: estimate 200 (runtime 50). After waiting 90 s:
  // xfactor = (90 + 200) / 200 = 1.45.
  const auto trace = makeTrace(4, {{0, 100, 4}, {10, 50, 4, 200}});
  ScriptedPolicy policy;
  double xfAt100 = 0;
  policy.completion = [&](Simulator& s, JobId) {
    xfAt100 = s.xfactor(1);
    ScriptedPolicy::greedy(s);
  };
  Simulator s(trace, policy);
  s.run();
  EXPECT_DOUBLE_EQ(xfAt100, (90.0 + 200.0) / 200.0);
}

TEST(Simulator, SuspensionSplitsWork) {
  // One long job, suspended at t=100 via timer, resumed greedily.
  const auto trace = makeTrace(4, {{0, 300, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(100, 1);
  };
  policy.timer = [](Simulator& s, std::uint64_t) {
    s.suspendJob(0);
    // Immediately resumable: processors freed synchronously (no overhead).
    s.resumeJob(0);
  };
  Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).suspendCount, 1u);
  EXPECT_EQ(s.exec(0).finish, 300);  // no overhead: zero net delay
  EXPECT_EQ(s.totalSuspensions(), 1u);
}

TEST(Simulator, SuspendedJobKeepsSavedProcs) {
  const auto trace = makeTrace(8, {{0, 100, 4}});
  ScriptedPolicy policy;
  ProcSet saved;
  policy.arrival = [&](Simulator& s, JobId j) {
    s.startJob(j);
    saved = s.exec(j).procs;
    s.scheduleTimer(10, 1);
  };
  policy.timer = [&](Simulator& s, std::uint64_t) {
    s.suspendJob(0);
    EXPECT_EQ(s.state(0), JobState::Suspended);
    EXPECT_EQ(s.exec(0).procs, saved);
    EXPECT_EQ(s.exec(0).remainingWork, 90);
    s.resumeJob(0);
    EXPECT_EQ(s.exec(0).procs, saved);
  };
  Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 100);
}

TEST(Simulator, StaleCompletionIgnoredAfterSuspension) {
  // Suspend at t=50, resume at once; the original completion event (t=100)
  // must be ignored and the real finish stays 100 only because resume was
  // instant. Delay the resume to t=80 and finish must shift to 130.
  const auto trace = makeTrace(4, {{0, 100, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(50, 1);  // suspend
    s.scheduleTimer(80, 2);  // resume
  };
  policy.timer = [](Simulator& s, std::uint64_t tag) {
    if (tag == 1) s.suspendJob(0);
    else s.resumeJob(0);
  };
  Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 130);
  EXPECT_EQ(s.exec(0).suspendCount, 1u);
}

TEST(Simulator, AccumulatedRunTracksSegments) {
  const auto trace = makeTrace(4, {{0, 100, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(30, 1);
    s.scheduleTimer(60, 2);
    s.scheduleTimer(70, 3);
  };
  policy.timer = [](Simulator& s, std::uint64_t tag) {
    if (tag == 1) {
      EXPECT_EQ(s.accumulatedRun(0), 30);
      s.suspendJob(0);
    } else if (tag == 2) {
      EXPECT_EQ(s.accumulatedRun(0), 30);  // frozen while suspended
      s.resumeJob(0);
    } else {
      EXPECT_EQ(s.accumulatedRun(0), 40);  // 30 + 10 into second segment
    }
  };
  Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 130);
}

TEST(Simulator, InstantaneousXfactorInfiniteBeforeFirstRun) {
  const auto trace = makeTrace(4, {{0, 100, 4}, {5, 10, 4}});
  ScriptedPolicy policy;
  bool checked = false;
  policy.arrival = [&](Simulator& s, JobId j) {
    if (j == 0) {
      s.startJob(0);
    } else {
      EXPECT_TRUE(std::isinf(s.instantaneousXfactor(1)));
      checked = true;
    }
  };
  policy.completion = [](Simulator& s, JobId) { ScriptedPolicy::greedy(s); };
  Simulator s(trace, policy);
  s.run();
  EXPECT_TRUE(checked);
}

TEST(Simulator, StartRejectsOversizedRequest) {
  const auto trace = makeTrace(4, {{0, 10, 4}, {0, 10, 4}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    if (j == 0) s.startJob(0);
    else EXPECT_THROW(s.startJob(1), InvariantError);
  };
  policy.completion = [](Simulator& s, JobId) { ScriptedPolicy::greedy(s); };
  Simulator s(trace, policy);
  s.run();
}

TEST(Simulator, DoubleStartThrows) {
  const auto trace = makeTrace(8, {{0, 10, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    EXPECT_THROW(s.startJob(j), InvariantError);
  };
  Simulator s(trace, policy);
  s.run();
}

TEST(Simulator, SuspendQueuedJobThrows) {
  const auto trace = makeTrace(8, {{0, 10, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    EXPECT_THROW(s.suspendJob(j), InvariantError);
    s.startJob(j);
  };
  Simulator s(trace, policy);
  s.run();
}

TEST(Simulator, ResumeOfNeverSuspendedThrows) {
  const auto trace = makeTrace(8, {{0, 10, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    EXPECT_THROW(s.resumeJob(j), InvariantError);
    s.startJob(j);
  };
  Simulator s(trace, policy);
  s.run();
}

TEST(Simulator, StartJobOnPreviouslySuspendedThrows) {
  const auto trace = makeTrace(8, {{0, 100, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(10, 1);
  };
  policy.timer = [](Simulator& s, std::uint64_t) {
    s.suspendJob(0);
    EXPECT_THROW(s.startJob(0), InvariantError);
    s.resumeJob(0);
  };
  Simulator s(trace, policy);
  s.run();
}

TEST(Simulator, TimerInThePastThrows) {
  // Two arrivals so the second fires at t=100 (traces are normalized to
  // start at 0); a timer for t=50 is then in the past.
  const auto trace = makeTrace(8, {{0, 10, 2}, {100, 10, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    if (j == 1) {
      EXPECT_THROW(s.scheduleTimer(50, 0), InvariantError);
    }
    s.startJob(j);
  };
  Simulator s(trace, policy);
  s.run();
}

TEST(Simulator, PolicyThatStrandsJobsTripsEndCheck) {
  const auto trace = makeTrace(8, {{0, 10, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator&, JobId) { /* never start */ };
  Simulator s(trace, policy);
  EXPECT_THROW(s.run(), InvariantError);
}

TEST(Simulator, AuditPassesThroughoutRandomishSchedule) {
  const auto trace = makeTrace(
      16, {{0, 50, 4}, {5, 80, 8}, {10, 20, 4}, {15, 60, 16}, {20, 10, 2}});
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId) {
    ScriptedPolicy::greedy(s);
    s.auditState();
  };
  policy.completion = [](Simulator& s, JobId) {
    ScriptedPolicy::greedy(s);
    s.auditState();
  };
  Simulator s(trace, policy);
  s.run();
  s.auditState();
}

TEST(Simulator, BusyProcSecondsMatchesWork) {
  const auto trace = makeTrace(8, {{0, 100, 4}, {0, 200, 2}});
  ScriptedPolicy policy;
  Simulator s(trace, policy);
  s.run();
  EXPECT_DOUBLE_EQ(s.busyProcSeconds(), 100.0 * 4 + 200.0 * 2);
}

// --- overhead phases --------------------------------------------------------

TEST(SimulatorOverhead, SuspendHoldsProcsDuringDrain) {
  const auto trace = makeTrace(4, {{0, 100, 4}});
  sched::FixedOverhead overhead(/*suspend=*/20, /*resume=*/30);
  ScriptedPolicy policy;
  bool drainChecked = false;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(50, 1);
  };
  policy.timer = [](Simulator& s, std::uint64_t) {
    s.suspendJob(0);
    // Draining: processors still held, state Suspending.
    EXPECT_EQ(s.state(0), JobState::Suspending);
    EXPECT_EQ(s.freeCount(), 0u);
  };
  policy.drained = [&](Simulator& s, JobId j) {
    EXPECT_EQ(s.now(), 70);  // 50 + 20 drain
    EXPECT_EQ(s.state(j), JobState::Suspended);
    EXPECT_EQ(s.freeCount(), 4u);
    drainChecked = true;
    s.resumeJob(j);
  };
  Simulator::Config config;
  config.overhead = &overhead;
  Simulator s(trace, policy, config);
  s.run();
  EXPECT_TRUE(drainChecked);
  // Timeline: run 0-50 (50 of work), drain 50-70, resume read-back 70-100,
  // remaining 50 of work 100-150.
  EXPECT_EQ(s.exec(0).finish, 150);
  EXPECT_EQ(s.exec(0).overheadTotal(), 50);
}

TEST(SimulatorOverhead, ResumeOverheadDoesNoWork) {
  const auto trace = makeTrace(4, {{0, 100, 4}});
  sched::FixedOverhead overhead(0, 40);
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(60, 1);
    s.scheduleTimer(80, 2);
  };
  policy.timer = [](Simulator& s, std::uint64_t tag) {
    if (tag == 1) {
      s.suspendJob(0);
      s.resumeJob(0);  // zero suspend overhead: procs free synchronously
    } else {
      // 60..80: read-back still in progress, no work done yet.
      EXPECT_EQ(s.accumulatedRun(0), 60);
    }
  };
  Simulator::Config config;
  config.overhead = &overhead;
  Simulator s(trace, policy, config);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 140);  // 100 work + 40 read-back
}

TEST(SimulatorOverhead, FirstStartHasNoResumeOverhead) {
  const auto trace = makeTrace(4, {{0, 100, 4}});
  sched::FixedOverhead overhead(25, 25);
  ScriptedPolicy policy;
  Simulator::Config config;
  config.overhead = &overhead;
  Simulator s(trace, policy, config);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 100);  // never suspended: no overhead at all
  EXPECT_EQ(s.exec(0).overheadTotal(), 0);
}

TEST(SimulatorOverhead, WaitAccruesDuringDrainAndSuspension) {
  const auto trace = makeTrace(4, {{0, 100, 4}});
  sched::FixedOverhead overhead(20, 0);
  ScriptedPolicy policy;
  policy.arrival = [](Simulator& s, JobId j) {
    s.startJob(j);
    s.scheduleTimer(50, 1);
  };
  policy.timer = [](Simulator& s, std::uint64_t) { s.suspendJob(0); };
  policy.drained = [](Simulator& s, JobId j) {
    EXPECT_EQ(s.accumulatedWait(j), 20);  // the drain counted as waiting
    s.resumeJob(j);
  };
  Simulator::Config config;
  config.overhead = &overhead;
  Simulator s(trace, policy, config);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 120);
}

}  // namespace
}  // namespace sps::sim
