// sps::check (`ctest -L check`): each invariant must FIRE on a corrupted
// history and stay SILENT on a golden run.
//
// The simulator cannot be coaxed into violating its own invariants
// end-to-end (that is the point of the oracle), so the fire half drives the
// validator cores with corrupted streams directly, and — for the run-level
// guarantee/TSS checks — uses the InvariantChecker probe seams to make a
// healthy run look like the policy lied. The silent half runs every kernel
// policy under both kernel modes with everything armed at stride 1.
#include <gtest/gtest.h>

#include <optional>

#include "check/check_config.hpp"
#include "check/diff_harness.hpp"
#include "check/invariants.hpp"
#include "core/simulation.hpp"
#include "obs/counters.hpp"
#include "helpers.hpp"
#include "sched/conservative.hpp"
#include "sched/core/reservation_ledger.hpp"
#include "sched/selective_suspension.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace sps::check {
namespace {

using sim::JobState;
using test::J;
using test::makeTrace;

// --- CheckConfig ----------------------------------------------------------

TEST(CheckConfig, OffByDefaultAndAllArmsEverything) {
  EXPECT_FALSE(CheckConfig{}.any());
  EXPECT_FALSE(core::SimulationOptions{}.check.any());
  const CheckConfig all = CheckConfig::all();
  EXPECT_TRUE(all.capacity && all.conservation && all.guarantees &&
              all.tssBound && all.ledger);
  EXPECT_TRUE(all.any());
  EXPECT_EQ(CheckConfig::all(0).auditStride, 1u);  // stride 0 would hang
}

// --- TransitionAudit (corrupted streams) ----------------------------------

TEST(TransitionAudit, IllegalEdgeFires) {
  TransitionAudit audit;
  EXPECT_THROW(audit.onTransition(0, JobState::NotArrived, JobState::Running,
                                  0),
               InvariantError);
}

TEST(TransitionAudit, ResurrectionFires) {
  TransitionAudit audit;
  audit.onTransition(0, JobState::NotArrived, JobState::Queued, 0);
  audit.onTransition(0, JobState::Queued, JobState::Running, 1);
  audit.onTransition(0, JobState::Running, JobState::Finished, 2);
  EXPECT_THROW(audit.onTransition(0, JobState::Finished, JobState::Queued, 3),
               InvariantError);
}

TEST(TransitionAudit, FromContradictingHistoryFires) {
  TransitionAudit audit;
  audit.onTransition(0, JobState::NotArrived, JobState::Queued, 0);
  // The stream claims the job is Suspended, but history left it Queued.
  EXPECT_THROW(audit.onTransition(0, JobState::Suspended, JobState::Running,
                                  1),
               InvariantError);
}

TEST(TransitionAudit, DoubleArrivalFires) {
  TransitionAudit audit;
  audit.onTransition(0, JobState::NotArrived, JobState::Queued, 0);
  EXPECT_THROW(audit.onTransition(0, JobState::NotArrived, JobState::Queued,
                                  1),
               InvariantError);
}

TEST(TransitionAudit, UnfinishedJobFailsFinalize) {
  TransitionAudit audit;
  audit.onTransition(0, JobState::NotArrived, JobState::Queued, 0);
  audit.onTransition(0, JobState::Queued, JobState::Running, 1);
  EXPECT_THROW(audit.finalize(1), InvariantError);  // never finished
}

TEST(TransitionAudit, MissingJobFailsFinalize) {
  TransitionAudit audit;
  audit.onTransition(0, JobState::NotArrived, JobState::Queued, 0);
  audit.onTransition(0, JobState::Queued, JobState::Running, 1);
  audit.onTransition(0, JobState::Running, JobState::Finished, 2);
  EXPECT_THROW(audit.finalize(2), InvariantError);  // one job never arrived
}

TEST(TransitionAudit, GoldenLifecycleWithSuspensionBalances) {
  TransitionAudit audit;
  audit.onTransition(0, JobState::NotArrived, JobState::Queued, 0);
  audit.onTransition(0, JobState::Queued, JobState::Running, 1);
  audit.onTransition(0, JobState::Running, JobState::Suspending, 2);
  audit.onTransition(0, JobState::Suspending, JobState::Suspended, 3);
  audit.onTransition(0, JobState::Suspended, JobState::Running, 4);
  audit.onTransition(0, JobState::Running, JobState::Finished, 5);
  EXPECT_NO_THROW(audit.finalize(1));
  EXPECT_EQ(audit.tally(0).suspensions, 1u);
  EXPECT_EQ(audit.tally(0).resumes, 1u);
}

// --- CapacityAudit (corrupted streams) ------------------------------------

TEST(CapacityAudit, OverlappingHoldFires) {
  CapacityAudit audit(8);
  audit.hold(0, sim::ProcSet::firstN(4), 0);
  sim::ProcSet overlapping;
  overlapping.insert(3);
  overlapping.insert(4);
  EXPECT_THROW(audit.hold(1, overlapping, 1), InvariantError);
}

TEST(CapacityAudit, DoubleHoldBySameJobFires) {
  CapacityAudit audit(8);
  audit.hold(0, sim::ProcSet::firstN(2), 0);
  sim::ProcSet other;
  other.insert(5);
  EXPECT_THROW(audit.hold(0, other, 1), InvariantError);
}

TEST(CapacityAudit, OutOfMachineHoldFires) {
  CapacityAudit audit(4);
  sim::ProcSet outside;
  outside.insert(7);  // machine has procs 0-3
  EXPECT_THROW(audit.hold(0, outside, 0), InvariantError);
}

TEST(CapacityAudit, ReleaseWithoutHoldFires) {
  CapacityAudit audit(8);
  EXPECT_THROW(audit.release(0, 0), InvariantError);
}

TEST(CapacityAudit, FreeSetOverlappingHeldFires) {
  CapacityAudit audit(8);
  audit.hold(0, sim::ProcSet::firstN(4), 0);
  // Machine claims everything is free while job 0 holds 0-3.
  EXPECT_THROW(audit.verify(sim::ProcSet::firstN(8), 0), InvariantError);
}

TEST(CapacityAudit, LeakedProcessorFires) {
  CapacityAudit audit(8);
  audit.hold(0, sim::ProcSet::firstN(4), 0);
  // Free set misses proc 7: neither held nor free — leaked.
  EXPECT_THROW(audit.verify(sim::ProcSet::firstN(7) - sim::ProcSet::firstN(4),
                            0),
               InvariantError);
}

TEST(CapacityAudit, GoldenHoldReleaseVerifies) {
  CapacityAudit audit(8);
  audit.hold(0, sim::ProcSet::firstN(4), 0);
  EXPECT_NO_THROW(
      audit.verify(sim::ProcSet::firstN(8) - sim::ProcSet::firstN(4), 0));
  audit.release(0, 1);
  EXPECT_NO_THROW(audit.verify(sim::ProcSet::firstN(8), 1));
  EXPECT_EQ(audit.heldCount(), 0u);
}

// --- GuaranteeAudit (corrupted streams) -----------------------------------

TEST(GuaranteeAudit, RegressionFires) {
  GuaranteeAudit audit;
  audit.observe(0, 100, 0);
  EXPECT_NO_THROW(audit.observe(0, 90, 1));  // compression: fine
  EXPECT_THROW(audit.observe(0, 95, 2), InvariantError);  // moved later
}

TEST(GuaranteeAudit, LostGuaranteeFires) {
  GuaranteeAudit audit;
  audit.observe(0, 100, 0);
  EXPECT_THROW(audit.observe(0, kNoTime, 1), InvariantError);
}

TEST(GuaranteeAudit, NeverGuaranteedStaysSilent) {
  GuaranteeAudit audit;
  EXPECT_NO_THROW(audit.observe(0, kNoTime, 0));
  EXPECT_NO_THROW(audit.observe(0, kNoTime, 1));
  EXPECT_NO_THROW(audit.observe(0, 50, 2));  // first real guarantee
}

TEST(GuaranteeAudit, ForgetConsumesTheAnchor) {
  GuaranteeAudit audit;
  audit.observe(0, 100, 0);
  audit.forget(0);  // started
  // A fresh (later) guarantee after restart bookkeeping is not a
  // regression of the consumed one.
  EXPECT_NO_THROW(audit.observe(0, 500, 1));
}

// --- checkTssBound --------------------------------------------------------

TEST(TssBound, SuspensionAtOrPastLimitFires) {
  EXPECT_THROW(checkTssBound(0, 5.0, 5.0, 0), InvariantError);
  EXPECT_THROW(checkTssBound(0, 9.0, 5.0, 0), InvariantError);
  EXPECT_NO_THROW(checkTssBound(0, 4.99, 5.0, 0));
}

// --- run-level fire tests (probe seams) -----------------------------------

TEST(InvariantChecker, LyingGuaranteeProbeFires) {
  // A probe whose guarantee drifts later on every poll simulates a policy
  // whose anchors regress; the epoch audit (stride 1) must catch it.
  CheckConfig cfg;
  cfg.guarantees = true;
  cfg.auditStride = 1;
  sched::ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 4}, {1, 100, 4}, {2, 100, 4}});
  sim::Simulator s(trace, policy);
  InvariantChecker checker(cfg);
  checker.arm(s, policy);
  Time drifting = 1000;
  checker.setGuaranteeProbe([&drifting](JobId) { return drifting += 10; });
  EXPECT_THROW(s.run(), InvariantError);
}

TEST(InvariantChecker, LyingTssProbeFiresOnSuspension) {
  // Real SS run that provably suspends (short job at half-width — wide enough for the half-width rule — starves behind a
  // full-width hog until the SF ratio trips). The probe claims the victim's
  // protection limit is 1.0; any slowdown is >= 1, so the first suspension
  // must fire.
  CheckConfig cfg;
  cfg.tssBound = true;
  sched::SsConfig ss;
  ss.suspensionFactor = 1.5;
  sched::SelectiveSuspension policy(ss);
  const auto trace = makeTrace(8, {{0, 100000, 8}, {10, 10, 4}});
  sim::Simulator s(trace, policy);
  InvariantChecker checker(cfg);
  checker.arm(s, policy);
  checker.setTssProbe(
      [](const sim::Simulator&, JobId) { return std::optional<double>(1.0); });
  EXPECT_THROW(s.run(), InvariantError);
}

TEST(InvariantChecker, SuspensionsHappenWithoutTheLyingProbe) {
  // Guard for the test above: same workload, no probe — silent, and the
  // run really does suspend (so the fire test exercised the bound path).
  sched::SsConfig ss;
  ss.suspensionFactor = 1.5;
  sched::SelectiveSuspension policy(ss);
  const auto trace = makeTrace(8, {{0, 100000, 8}, {10, 10, 4}});
  sim::Simulator s(trace, policy);
  InvariantChecker checker(CheckConfig::all(1));
  checker.arm(s, policy);
  EXPECT_NO_THROW(s.run());
  EXPECT_NO_THROW(checker.finalize(s));
  EXPECT_GT(s.totalSuspensions(), 0u);
}

TEST(InvariantChecker, CorruptedLedgerProfileFires) {
  // Mid-run, poke a phantom busy interval into the incremental profile via
  // the ledger's test seam: the next epoch audit's from-scratch rebuild
  // cannot match and must fire.
  CheckConfig cfg;
  cfg.ledger = true;
  cfg.auditStride = 1;
  sched::ConservativeBackfill policy;
  const auto trace =
      makeTrace(4, {{0, 100, 2}, {0, 100, 4}, {50, 100, 1}, {60, 100, 4}});
  sim::Simulator s(trace, policy);
  InvariantChecker checker(cfg);
  checker.arm(s, policy);
  auto& ledger = const_cast<sched::kernel::ReservationLedger&>(policy.ledger());
  std::uint64_t events = 0;
  s.observers().onEventDispatched(
      [&ledger, &events](const sim::Simulator&, const auto&) {
        if (++events == 3)
          // Far beyond the trace horizon the profile is fully free, so
          // the poke itself cannot oversubscribe — only the audit objects.
          ledger.mutableProfile().addBusy(1000000000, 1000000100, 1);
      });
  EXPECT_THROW(s.run(), InvariantError);
}

// --- golden runs stay silent ----------------------------------------------

TEST(InvariantChecker, EveryPolicyBothKernelModesSilent) {
  // Adversarial (but healthy) workload through every fuzz policy token
  // under both kernel modes with everything armed at stride 1 — the
  // oracle's false-positive budget is zero.
  const workload::Trace trace = makeFuzzTrace(2026);
  for (const std::string& token : fuzzPolicyTokens()) {
    SCOPED_TRACE(token);
    for (bool incremental : {true, false}) {
      SCOPED_TRACE(incremental ? "incremental" : "rebuild");
      FuzzCase c;
      c.policyToken = token;
      c.overhead = false;
      c.trace = trace;
      const DiffHarness harness;
      std::string violation;
      (void)harness.runOnce(c,
                            incremental
                                ? sched::kernel::KernelMode::Incremental
                                : sched::kernel::KernelMode::Rebuild,
                            &violation);
      EXPECT_EQ(violation, "");
    }
  }
}

TEST(InvariantChecker, RunSimulationWiringArmsAndAudits) {
  // options.check flows through core::runSimulation, and the obs counters
  // prove the oracle actually ran.
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Conservative;
  core::SimulationOptions options;
  options.check = CheckConfig::all(1);
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  EXPECT_NO_THROW((void)core::runSimulation(trace, spec, options));
}

TEST(InvariantChecker, EpochAuditsRespectStride) {
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  auto countAudits = [&trace](std::uint32_t stride) {
    sched::ConservativeBackfill policy;
    sim::Simulator s(trace, policy);
    InvariantChecker checker(CheckConfig::all(stride));
    checker.arm(s, policy);
    s.run();
    checker.finalize(s);
    return checker.epochAudits();
  };
  const std::uint64_t dense = countAudits(1);
  const std::uint64_t sparse = countAudits(4);
  EXPECT_GT(dense, 0u);
  EXPECT_LT(sparse, dense);
}

TEST(InvariantChecker, DisabledConfigRegistersNothing) {
  sched::ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 50, 1}});
  sim::Simulator s(trace, policy);
  InvariantChecker checker{CheckConfig{}};
  checker.arm(s, policy);
  s.run();
  EXPECT_EQ(checker.epochAudits(), 0u);
  EXPECT_EQ(s.counters().value(obs::Counter::CheckTransitionAudits), 0u);
  EXPECT_EQ(s.counters().value(obs::Counter::CheckEpochAudits), 0u);
}

TEST(InvariantChecker, CountersRecordAuditVolume) {
  sched::ConservativeBackfill policy;
  const auto trace = makeTrace(4, {{0, 100, 3}, {1, 100, 4}, {2, 50, 1}});
  sim::Simulator s(trace, policy);
  InvariantChecker checker(CheckConfig::all(1));
  checker.arm(s, policy);
  s.run();
  checker.finalize(s);
  EXPECT_GT(s.counters().value(obs::Counter::CheckTransitionAudits), 0u);
  EXPECT_GT(s.counters().value(obs::Counter::CheckEpochAudits), 0u);
}

}  // namespace
}  // namespace sps::check
