// Federation battery (`ctest -L fed`): epoch-barrier contract, router
// units, the partition-equivalence theorem (federation with a recorded
// router == matching single-cluster batch runs, bit for bit) across every
// policy token x both kernel modes x {1,2,4} shards, and worker-pool-size
// determinism. This is the lane to re-run under both sanitizer flavours
// (-DSPS_SANITIZE=thread for the epoch barrier hand-off, =address for the
// per-shard trace growth).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "check/diff_harness.hpp"
#include "check/fleet_audit.hpp"
#include "fed/fed_diff.hpp"
#include "fed/federation.hpp"
#include "fed/router.hpp"
#include "helpers.hpp"
#include "metrics/openmetrics.hpp"
#include "sched/policy_factory.hpp"
#include "util/check.hpp"
#include "workload/synthetic.hpp"

namespace sps::fed {
namespace {

using test::J;
using test::makeTrace;

std::vector<ShardView> viewsOf(std::vector<std::pair<double, double>> loads,
                               std::uint32_t procs = 64) {
  std::vector<ShardView> views;
  for (const auto& [backlog, routed] : loads)
    views.push_back(ShardView{procs, backlog, routed});
  return views;
}

// ---------------------------------------------------------------- routers

TEST(Router, StaticHashIsSeqModuloShards) {
  StaticHashRouter router;
  const auto views = viewsOf({{0, 0}, {1e9, 0}, {0, 1e9}});
  workload::Job job;
  for (std::uint64_t seq = 0; seq < 9; ++seq)
    EXPECT_EQ(router.route(job, seq, views), seq % 3);
}

TEST(Router, LeastLoadedPicksSmallestPressure) {
  LeastLoadedRouter router;
  workload::Job job;
  EXPECT_EQ(router.route(job, 0, viewsOf({{500, 0}, {100, 0}, {300, 0}})), 1u);
  // In-window routed work counts toward pressure: the shard that looked
  // idle at the barrier stops winning once the router has loaded it up.
  EXPECT_EQ(router.route(job, 1, viewsOf({{500, 0}, {100, 900}, {300, 0}})),
            2u);
  // Ties break to the lowest index.
  EXPECT_EQ(router.route(job, 2, viewsOf({{100, 0}, {100, 0}})), 0u);
}

TEST(Router, ReplayReproducesTheRecordAndBoundsChecks) {
  ReplayRouter router({2, 0, 1});
  const auto views = viewsOf({{0, 0}, {0, 0}, {0, 0}});
  workload::Job job;
  EXPECT_EQ(router.route(job, 0, views), 2u);
  EXPECT_EQ(router.route(job, 1, views), 0u);
  EXPECT_EQ(router.route(job, 2, views), 1u);
  EXPECT_THROW((void)router.route(job, 3, views), InvariantError);
}

TEST(Router, TokenRegistry) {
  for (const std::string& token : knownRouterTokens())
    EXPECT_EQ(routerFromToken(token)->name(), token);
  EXPECT_THROW((void)routerFromToken("round-robin"), InputError);
}

// ------------------------------------------------- epoch-barrier contract

FleetStats runFleet(const workload::Trace& fleet, const std::string& policy,
                    const std::string& router, FederationConfig config) {
  const core::PolicySpec spec = sched::specFromToken(policy);
  const auto r = routerFromToken(router);
  config.check = check::CheckConfig::all(1);
  return Federation(fleet, spec, *r, config).run();
}

std::vector<std::string> shardMetrics(const FleetStats& fleet) {
  std::vector<std::string> out;
  for (const auto& s : fleet.shards) out.push_back(metrics::openMetrics(s));
  return out;
}

workload::Trace smallFleetTrace(std::uint32_t clusters) {
  auto cfg = workload::sdscConfig(240, 11);
  cfg.machineProcs = 64;
  return workload::generateFleetTrace(cfg, clusters);
}

TEST(Federation, ResultsInvariantToEpochBoundariesGivenTheRoutingRecord) {
  // Epoch boundaries batch work; given a fixed routing record they must
  // never change a schedule. (A load-observing router like least-loaded
  // legitimately routes differently under a different barrier cadence —
  // its inputs are barrier snapshots — so the invariance theorem is stated
  // over the record: replay ANY recorded assignment under ANY epoch knobs
  // and the shards come out bit-identical.) Sweep auto mode (tiny and huge
  // batches) and fixed tiling (fine and coarse).
  const auto fleet = smallFleetTrace(2);
  FederationConfig base;
  base.shards = 2;
  base.routingDelay = 45;
  base.jobsPerEpoch = 50;  // several barriers even on a 240-job trace
  base.check = check::CheckConfig::all(1);

  const auto recorded = runFleet(fleet, "ss:2", "least-loaded", base);
  const auto referenceMetrics = shardMetrics(recorded);
  ASSERT_GT(recorded.epochs, 1u);
  ASSERT_GT(recorded.forwarded, 0u);  // the record is not just home shards

  const core::PolicySpec spec = sched::specFromToken("ss:2");
  for (const auto& [epochLength, jobsPerEpoch] :
       std::vector<std::pair<Time, std::size_t>>{
           {0, 1}, {0, 10000}, {300, 0}, {24 * kHour, 0}}) {
    FederationConfig config = base;
    config.epochLength = epochLength;
    if (jobsPerEpoch > 0) config.jobsPerEpoch = jobsPerEpoch;
    ReplayRouter replay(recorded.assignments);
    const auto run = Federation(fleet, spec, replay, config).run();
    EXPECT_EQ(run.assignments, recorded.assignments)
        << "epochLength=" << epochLength << " jobsPerEpoch=" << jobsPerEpoch;
    EXPECT_EQ(run.effectiveSubmits, recorded.effectiveSubmits);
    EXPECT_EQ(shardMetrics(run), referenceMetrics)
        << "epochLength=" << epochLength << " jobsPerEpoch=" << jobsPerEpoch;
  }
}

TEST(Federation, CoarserEpochsMeanFewerBarriers) {
  const auto fleet = smallFleetTrace(2);
  FederationConfig fine;
  fine.shards = 2;
  fine.epochLength = 300;
  FederationConfig coarse = fine;
  coarse.epochLength = 24 * kHour;
  const auto fineRun = runFleet(fleet, "easy", "hash", fine);
  const auto coarseRun = runFleet(fleet, "easy", "hash", coarse);
  EXPECT_LT(coarseRun.epochs, fineRun.epochs);
  EXPECT_EQ(shardMetrics(fineRun), shardMetrics(coarseRun));
}

TEST(Federation, HomeShardPaysNoDelayForwardedJobsPayExactlyOne) {
  const auto fleet = smallFleetTrace(2);
  FederationConfig config;
  config.shards = 2;
  config.routingDelay = 120;

  // The hash router IS the home-shard rule: nothing forwards, nothing pays.
  const auto home = runFleet(fleet, "easy", "hash", config);
  EXPECT_EQ(home.forwarded, 0u);
  for (const workload::Job& job : fleet.jobs)
    EXPECT_EQ(home.effectiveSubmits[job.id], job.submit);

  // Least-loaded deviates from home for some jobs; each deviation arrives
  // exactly routingDelay late, and the audit re-derives that from scratch.
  const auto balanced = runFleet(fleet, "easy", "least-loaded", config);
  EXPECT_GT(balanced.forwarded, 0u);
  std::uint64_t forwarded = 0;
  for (const workload::Job& job : fleet.jobs) {
    const bool offHome = balanced.assignments[job.id] != job.id % 2;
    forwarded += offHome ? 1 : 0;
    EXPECT_EQ(balanced.effectiveSubmits[job.id],
              offHome ? job.submit + 120 : job.submit);
  }
  EXPECT_EQ(balanced.forwarded, forwarded);
  check::auditFleetConservation(fleet, balanced.shards, balanced.assignments,
                                balanced.effectiveSubmits, 2, 120);
}

TEST(Federation, RunIsSingleUse) {
  const auto fleet = smallFleetTrace(1);
  const core::PolicySpec spec = sched::specFromToken("fcfs");
  StaticHashRouter router;
  Federation federation(fleet, spec, router, FederationConfig{.shards = 1});
  (void)federation.run();
  EXPECT_THROW((void)federation.run(), InvariantError);
}

// ------------------------------------------------------- per-shard traces

TEST(Federation, PerShardTracesPartitionTheFleet) {
  const auto fleet = makeTrace(
      8, {{0, 50, 2}, {5, 30, 4}, {5, 20, 1}, {9, 10, 8}}, "tiny-fleet");
  const std::vector<std::uint32_t> assignments{1, 1, 0, 1};
  const std::vector<Time> effective{10, 5, 5, 9};  // job 0 forwarded late
  const auto shards = perShardTraces(fleet, assignments, effective, 2);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].name, "tiny-fleet/shard0");
  EXPECT_EQ(shards[0].machineProcs, 8u);
  ASSERT_EQ(shards[0].jobs.size(), 1u);
  EXPECT_EQ(shards[0].jobs[0].procs, 1u);
  EXPECT_EQ(shards[0].jobs[0].id, 0u);

  // Shard 1 orders by (effective submit, fleet id): jobs 1, 3, then 0.
  ASSERT_EQ(shards[1].jobs.size(), 3u);
  EXPECT_EQ(shards[1].jobs[0].procs, 4u);
  EXPECT_EQ(shards[1].jobs[1].procs, 8u);
  EXPECT_EQ(shards[1].jobs[2].procs, 2u);
  EXPECT_EQ(shards[1].jobs[2].submit, 10);
  for (JobId id = 0; id < 3; ++id) EXPECT_EQ(shards[1].jobs[id].id, id);
}

TEST(FleetAudit, CatchesATamperedRecord) {
  const auto fleet = smallFleetTrace(2);
  FederationConfig config;
  config.shards = 2;
  auto run = runFleet(fleet, "easy", "hash", config);
  EXPECT_NO_THROW(check::auditFleetConservation(
      fleet, run.shards, run.assignments, run.effectiveSubmits, 2, 0));
  auto tampered = run.assignments;
  tampered[3] ^= 1u;  // claim job 3 ran on the other shard
  EXPECT_THROW(check::auditFleetConservation(fleet, run.shards, tampered,
                                             run.effectiveSubmits, 2, 0),
               InvariantError);
  auto shifted = run.effectiveSubmits;
  shifted[5] += 1;
  EXPECT_THROW(check::auditFleetConservation(fleet, run.shards,
                                             run.assignments, shifted, 2, 0),
               InvariantError);
}

// ------------------------------------------------ partition equivalence

// The theorem, policy by policy: a federation with a recorded router
// equals the matching single-cluster batch runs on the per-shard traces,
// bit for bit — schedules, counters, suspension categories — under BOTH
// kernel modes. diffFederated also crosses the event-queue kinds and
// re-runs the fleet through the ReplayRouter, so one green outcome pins
// the router record, the epoch sync, and the shard independence at once.
void expectPartitionEquivalence(std::uint32_t shards) {
  for (const std::string& token : sched::knownPolicyTokens()) {
    check::FuzzCase c = check::makeFuzzCase(7, token);
    c.fedShards = shards;
    c.fedRouter = "hash";
    c.fedDelay = shards > 1 ? 30 : 0;
    const auto outcome = diffFederated(c);
    EXPECT_TRUE(outcome.ok())
        << token << " shards=" << shards << "\n  divergence: "
        << outcome.divergence << "\n  violation: " << outcome.violation;
  }
}

TEST(PartitionEquivalence, OneShardEveryPolicyBothModes) {
  expectPartitionEquivalence(1);
}
TEST(PartitionEquivalence, TwoShardsEveryPolicyBothModes) {
  expectPartitionEquivalence(2);
}
TEST(PartitionEquivalence, FourShardsEveryPolicyBothModes) {
  expectPartitionEquivalence(4);
}

TEST(PartitionEquivalence, LeastLoadedRouterWithOverheadModel) {
  check::FuzzCase c = check::makeFuzzCase(19, "ss:2");
  c.overhead = true;
  c.fedShards = 3;
  c.fedRouter = "least-loaded";
  c.fedDelay = 60;
  const auto outcome = diffFederated(c);
  EXPECT_TRUE(outcome.ok()) << "divergence: " << outcome.divergence
                            << "\n  violation: " << outcome.violation;
}

// ------------------------------------------------------------ determinism

TEST(Federation, BitIdenticalAtEveryPoolSize) {
  // Routing is single-threaded at barriers and shards are independent
  // between them, so the pool size must be invisible in the results —
  // including under the suspension-overhead model, whose per-shard cost
  // tables grow concurrently with the run.
  const auto fleet = smallFleetTrace(4);
  FederationConfig base;
  base.shards = 4;
  base.routingDelay = 30;
  base.diskSwapOverhead = true;

  std::vector<std::string> reference;
  FleetStats referenceRun;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    FederationConfig config = base;
    config.threads = threads;
    auto run = runFleet(fleet, "ss:2", "least-loaded", config);
    auto metrics = shardMetrics(run);
    if (reference.empty()) {
      reference = std::move(metrics);
      referenceRun = std::move(run);
      continue;
    }
    EXPECT_EQ(run.assignments, referenceRun.assignments)
        << "threads=" << threads;
    EXPECT_EQ(run.effectiveSubmits, referenceRun.effectiveSubmits);
    EXPECT_EQ(run.epochs, referenceRun.epochs);
    EXPECT_EQ(metrics, reference) << "threads=" << threads;
  }
}

// ------------------------------------------------------- fleet aggregates

TEST(FleetStats, AggregatesSumAcrossShards) {
  const auto fleet = smallFleetTrace(2);
  FederationConfig config;
  config.shards = 2;
  const auto run = runFleet(fleet, "ss:2", "hash", config);
  ASSERT_EQ(run.shards.size(), 2u);
  EXPECT_EQ(run.jobCount(), fleet.jobs.size());
  EXPECT_EQ(run.eventsProcessed(),
            run.shards[0].eventsProcessed + run.shards[1].eventsProcessed);
  EXPECT_EQ(run.suspensions(),
            run.shards[0].suspensions + run.shards[1].suspensions);
  EXPECT_EQ(run.span(), std::max(run.shards[0].span, run.shards[1].span));
  const auto merged = run.counters();
  EXPECT_EQ(merged.value(obs::Counter::SimEvents),
            run.shards[0].counters.value(obs::Counter::SimEvents) +
                run.shards[1].counters.value(obs::Counter::SimEvents));
  EXPECT_GT(run.utilization(), 0.0);
  EXPECT_GT(run.meanBoundedSlowdown(), 0.0);
}

// ------------------------------------------------------- fleet generator

TEST(FleetTrace, ClustersOneIsBitIdenticalToGenerateTrace) {
  const auto cfg = workload::sdscConfig(200, 5);
  const auto plain = workload::generateTrace(cfg);
  const auto fleet = workload::generateFleetTrace(cfg, 1);
  ASSERT_EQ(fleet.jobs.size(), plain.jobs.size());
  for (JobId id = 0; id < plain.jobs.size(); ++id) {
    EXPECT_EQ(fleet.jobs[id].submit, plain.jobs[id].submit);
    EXPECT_EQ(fleet.jobs[id].runtime, plain.jobs[id].runtime);
    EXPECT_EQ(fleet.jobs[id].procs, plain.jobs[id].procs);
  }
  EXPECT_EQ(fleet.name, "SDSC-synth-fleet1x");
}

TEST(FleetTrace, ClusterCountCompressesArrivalsOnly) {
  const auto cfg = workload::sdscConfig(200, 5);
  const auto one = workload::generateFleetTrace(cfg, 1);
  const auto four = workload::generateFleetTrace(cfg, 4);
  ASSERT_EQ(four.jobs.size(), one.jobs.size());
  workload::validateTrace(four);
  for (JobId id = 0; id < one.jobs.size(); ++id) {
    EXPECT_EQ(four.jobs[id].submit,
              static_cast<Time>(
                  std::llround(static_cast<double>(one.jobs[id].submit) / 4)));
    EXPECT_EQ(four.jobs[id].runtime, one.jobs[id].runtime);
    EXPECT_EQ(four.jobs[id].procs, one.jobs[id].procs);
  }
}

}  // namespace
}  // namespace sps::fed
