// Unit tests: suspension/restart overhead models (Section V-A).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sched/overhead.hpp"
#include "util/check.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

TEST(DiskSwapOverhead, PaperNumbers) {
  // 2 MB/s per processor: 100 MB -> 50 s, 1024 MB -> 512 s; width-independent
  // (every processor drains its own image in parallel).
  auto trace = makeTrace(8, {{0, 10, 1}, {0, 10, 8}});
  trace.jobs[0].memoryMb = 100;
  trace.jobs[1].memoryMb = 1024;
  DiskSwapOverhead model(trace);
  EXPECT_EQ(model.suspendOverhead(0), 50);
  EXPECT_EQ(model.resumeOverhead(0), 50);
  EXPECT_EQ(model.suspendOverhead(1), 512);
  EXPECT_EQ(model.resumeOverhead(1), 512);
  EXPECT_DOUBLE_EQ(model.bandwidthMbPerSecond(), 2.0);
}

TEST(DiskSwapOverhead, CustomBandwidth) {
  auto trace = makeTrace(8, {{0, 10, 2}});
  trace.jobs[0].memoryMb = 800;
  DiskSwapOverhead model(trace, 8.0);
  EXPECT_EQ(model.suspendOverhead(0), 100);
}

TEST(DiskSwapOverhead, RoundsUpPartialSeconds) {
  auto trace = makeTrace(8, {{0, 10, 2}});
  trace.jobs[0].memoryMb = 3;
  DiskSwapOverhead model(trace, 2.0);
  EXPECT_EQ(model.suspendOverhead(0), 2);  // 1.5 s -> 2 s
}

TEST(DiskSwapOverhead, ZeroMemoryIsFree) {
  auto trace = makeTrace(8, {{0, 10, 2}});
  DiskSwapOverhead model(trace);
  EXPECT_EQ(model.suspendOverhead(0), 0);
}

TEST(DiskSwapOverhead, RejectsBadBandwidth) {
  const auto trace = makeTrace(8, {{0, 10, 2}});
  EXPECT_THROW(DiskSwapOverhead(trace, 0.0), InvariantError);
  EXPECT_THROW(DiskSwapOverhead(trace, -2.0), InvariantError);
}

TEST(FixedOverhead, ReturnsConfiguredValues) {
  FixedOverhead model(12, 34);
  EXPECT_EQ(model.suspendOverhead(0), 12);
  EXPECT_EQ(model.resumeOverhead(99), 34);
}

}  // namespace
}  // namespace sps::sched
