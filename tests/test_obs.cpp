// Tests for the observability layer (sps::obs): counters, trace sinks, the
// typed observer registry, and their integration with the simulator, the
// scheduling kernel, and the Runner.
//
// The suite is written to pass in both build flavours: with -DSPS_TRACE=OFF
// (default) it proves the hot path makes zero sink calls; with ON it proves
// the emitted traces are valid JSON and the counters are unaffected.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/runner.hpp"
#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/json.hpp"
#include "obs/counters.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace sps {
namespace {

using obs::Counter;
using sched::kernel::KernelMode;

// --- counters ---------------------------------------------------------------

TEST(Counters, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const std::string name = obs::counterName(static_cast<Counter>(i));
    EXPECT_FALSE(name.empty()) << "counter " << i;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
}

TEST(Counters, IncAddValueReset) {
  obs::Counters c;
  EXPECT_FALSE(c.anyNonZero());
  c.inc(Counter::SimEvents);
  c.add(Counter::SimEvents, 4);
  c.incSuspensionCategory(3);
  EXPECT_EQ(c.value(Counter::SimEvents), 5u);
  EXPECT_EQ(c.value(Counter::SimStarts), 0u);
  EXPECT_EQ(c.suspensionsByCategory()[3], 1u);
  EXPECT_TRUE(c.anyNonZero());

  obs::Counters same;
  same.add(Counter::SimEvents, 5);
  same.incSuspensionCategory(3);
  EXPECT_EQ(c, same);

  c.reset();
  EXPECT_FALSE(c.anyNonZero());
  EXPECT_EQ(c, obs::Counters{});
}

TEST(Counters, JsonOmitsZerosAndValidates) {
  obs::Counters c;
  c.add(Counter::SimSuspensions, 7);
  c.incSuspensionCategory(0);
  std::ostringstream os;
  metrics::JsonWriter w(os);
  metrics::writeCountersJson(w, c);
  const std::string json = os.str();
  std::string error;
  EXPECT_TRUE(metrics::validateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"sim.suspensions\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("suspensionsByCategory"), std::string::npos) << json;
  EXPECT_EQ(json.find("sim.events"), std::string::npos)
      << "zero counters must be omitted: " << json;
}

// --- validateJson -----------------------------------------------------------

TEST(ValidateJson, AcceptsWellFormedDocuments) {
  for (const char* text :
       {"{}", "[]", "null", "true", "-12.5e3", "\"a\\u0041b\"",
        "{\"k\":[1,2,{\"n\":null}],\"s\":\"\\\"\"}", "  [1, 2, 3]  "}) {
    std::string error;
    EXPECT_TRUE(metrics::validateJson(text, &error)) << text << ": " << error;
  }
}

TEST(ValidateJson, RejectsMalformedDocuments) {
  for (const char* text :
       {"", "{", "}", "[1,]", "{\"k\":}", "{\"k\" 1}", "01", "1.", "+1",
        "nul", "\"unterminated", "\"bad\\q\"", "\"ctrl\tchar\"", "[1] x",
        "{\"a\":1,}", "'single'"}) {
    std::string error;
    EXPECT_FALSE(metrics::validateJson(text, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// --- trace sinks ------------------------------------------------------------

obs::TraceEvent sampleEvent() {
  return obs::complete("cat", "name", 10, 5, 2).arg("k", 1).str("s", "v");
}

TEST(TraceSinks, ChromeTraceIsValidJson) {
  std::ostringstream os;
  {
    obs::ChromeTraceSink sink(os);
    sink.emit(sampleEvent());
    sink.emit(obs::instant("sim", "tick", 42));
    sink.emit(obs::begin("job", "run", 0, 7));
    sink.emit(obs::end("job", "run", 9, 7));
    EXPECT_EQ(sink.eventCount(), 4u);
  }  // destructor writes the closing bracket
  const std::string json = os.str();
  std::string error;
  EXPECT_TRUE(metrics::validateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceSinks, ChromeTraceEmptyIsStillLoadable) {
  std::ostringstream os;
  { obs::ChromeTraceSink sink(os); }
  std::string error;
  EXPECT_TRUE(metrics::validateJson(os.str(), &error)) << error;
}

TEST(TraceSinks, JsonlEmitsOneValidObjectPerLine) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.emit(sampleEvent());
  sink.emit(obs::instant("sim", "tick", 1));
  EXPECT_EQ(sink.eventCount(), 2u);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    std::string error;
    EXPECT_TRUE(metrics::validateJson(line, &error)) << error << "\n" << line;
  }
  EXPECT_EQ(n, 2u);
}

// --- observer registry ------------------------------------------------------

workload::Trace suspensionTrace() {
  // Greedy ScriptedPolicy on this trace produces starts, a suspension via
  // the scripted timer, and a resume — every observer kind fires.
  return test::makeTrace(8, {{0, 100, 4}, {10, 50, 4}});
}

TEST(ObserverRegistry, TypedSubscriptionsFire) {
  const auto trace = suspensionTrace();
  test::ScriptedPolicy policy;
  sim::Simulator s(trace, policy);

  std::uint64_t events = 0;
  std::uint64_t transitions = 0;
  std::vector<std::pair<Time, Time>> clockSteps;
  s.observers().onEventDispatched(
      [&](const sim::Simulator&, const sim::Event&) { ++events; });
  s.observers().onStateChange(
      [&](const sim::Simulator&, JobId, sim::JobState, sim::JobState) {
        ++transitions;
      });
  s.observers().onClockAdvanced(
      [&](const sim::Simulator&, Time from, Time to) {
        clockSteps.emplace_back(from, to);
      });
  EXPECT_EQ(s.observers().eventDispatchedCount(), 1u);
  EXPECT_EQ(s.observers().stateChangeCount(), 1u);
  EXPECT_EQ(s.observers().clockAdvancedCount(), 1u);

  s.run();
  EXPECT_EQ(events, s.eventsProcessed());
  EXPECT_GT(transitions, 0u);
  EXPECT_EQ(transitions, s.counters().value(Counter::SimTransitions));
  ASSERT_FALSE(clockSteps.empty());
  for (const auto& [from, to] : clockSteps) EXPECT_LT(from, to);
  EXPECT_EQ(clockSteps.size(),
            s.counters().value(Counter::SimClockAdvances));
}

// PR 3 deprecated the pre-registry shims; this PR removes them. The
// requires-expressions prove the names are gone from the API (a revival
// would flip these to true and fail), and the registry test shows the
// replacement carries multiple subscribers natively.
template <typename S>
concept HasLegacyHook = requires(S s) {
  s.setStateChangeHook(
      [](const sim::Simulator&, JobId, sim::JobState, sim::JobState) {});
};
template <typename S>
concept HasLegacyObserver = requires(S s) {
  s.addStateChangeObserver(
      [](const sim::Simulator&, JobId, sim::JobState, sim::JobState) {});
};
static_assert(!HasLegacyHook<sim::Simulator>,
              "setStateChangeHook shim was removed in this PR");
static_assert(!HasLegacyObserver<sim::Simulator>,
              "addStateChangeObserver shim was removed in this PR");

TEST(ObserverRegistry, MultipleSubscribersAllForward) {
  const auto trace = suspensionTrace();
  test::ScriptedPolicy policy;
  sim::Simulator s(trace, policy);
  std::uint64_t transitions = 0;
  for (int i = 0; i < 2; ++i)
    s.observers().onStateChange(
        [&](const sim::Simulator&, JobId, sim::JobState, sim::JobState) {
          ++transitions;
        });
  EXPECT_EQ(s.observers().stateChangeCount(), 2u);
  s.run();
  EXPECT_EQ(transitions, 2 * s.counters().value(Counter::SimTransitions));
}

// --- simulator counters -----------------------------------------------------

TEST(SimulatorCounters, MatchTheTransitionLog) {
  const auto trace = test::makeTrace(8, {{0, 100, 8}, {0, 100, 8}});
  test::ScriptedPolicy policy;
  policy.arrival = [](sim::Simulator& s, JobId j) {
    if (j == 0) s.startJob(0);
    if (j == 1) {
      s.suspendJob(0);
      s.startJob(1);
    }
  };
  policy.completion = [](sim::Simulator& s, JobId j) {
    if (j == 1) s.resumeJob(0);
  };
  sim::Simulator s(trace, policy);
  std::uint64_t logStarts = 0, logResumes = 0, logSuspensions = 0;
  s.observers().onStateChange([&](const sim::Simulator&, JobId,
                                  sim::JobState from, sim::JobState to) {
    if (to == sim::JobState::Running)
      (from == sim::JobState::Queued ? logStarts : logResumes)++;
    if (from == sim::JobState::Running && to != sim::JobState::Finished)
      ++logSuspensions;
  });
  s.run();

  const obs::Counters& c = s.counters();
  EXPECT_EQ(c.value(Counter::SimEvents), s.eventsProcessed());
  EXPECT_EQ(c.value(Counter::SimStarts), logStarts);
  EXPECT_EQ(c.value(Counter::SimResumes), logResumes);
  EXPECT_EQ(c.value(Counter::SimSuspensions), logSuspensions);
  EXPECT_EQ(c.value(Counter::SimSuspensions), s.totalSuspensions());
  std::uint64_t byCategory = 0;
  for (const std::uint64_t v : c.suspensionsByCategory()) byCategory += v;
  EXPECT_EQ(byCategory, c.value(Counter::SimSuspensions));
}

// --- sink integration through the facade ------------------------------------

TEST(TraceGate, SinkCallsOnlyHappenWhenCompiledIn) {
  const auto trace = workload::generateTrace(workload::sdscConfig(150, 11));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::SelectiveSuspension;
  obs::CountingSink sink;
  core::SimulationOptions options;
  options.traceSink = &sink;
  const metrics::RunStats stats = core::runSimulation(trace, spec, options);
  EXPECT_TRUE(stats.counters.anyNonZero());  // counters flow in every build
  if (obs::kTraceCompiledIn) {
    EXPECT_GT(sink.count(), 0u);
  } else {
    EXPECT_EQ(sink.count(), 0u) << "disabled build must make no sink calls";
  }
}

TEST(TraceGate, ChromeTraceOfARunValidates) {
  const auto trace = workload::generateTrace(workload::ctcConfig(120, 5));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::SelectiveSuspension;
  std::ostringstream os;
  {
    obs::ChromeTraceSink sink(os);
    core::SimulationOptions options;
    options.traceSink = &sink;
    (void)core::runSimulation(trace, spec, options);
    if (obs::kTraceCompiledIn) {
      EXPECT_GT(sink.eventCount(), 0u);
    }
  }
  std::string error;
  EXPECT_TRUE(metrics::validateJson(os.str(), &error)) << error;
}

// --- counters vs. the kernel's golden equivalence ---------------------------

/// The acceptance bar: on the same workload, Incremental and Rebuild kernel
/// modes must agree on every schedule-derived counter — suspensions (total
/// and per category) and backfill starts. Ledger/index operation counts
/// legitimately differ (they measure the kernel's internal work, not the
/// schedule) and are excluded.
TEST(KernelModeCounters, SuspensionAndBackfillCountsAreModeInvariant) {
  const auto trace = workload::generateTrace(workload::sdscConfig(400, 42));
  std::vector<core::PolicySpec> specs;
  {
    core::PolicySpec easy;
    easy.kind = core::PolicyKind::Easy;
    specs.push_back(easy);
    core::PolicySpec ss;
    ss.kind = core::PolicyKind::SelectiveSuspension;
    specs.push_back(ss);
    core::PolicySpec depth;
    depth.kind = core::PolicyKind::DepthBackfill;
    specs.push_back(depth);
    core::PolicySpec is;
    is.kind = core::PolicyKind::ImmediateService;
    specs.push_back(is);
  }
  for (core::PolicySpec spec : specs) {
    spec.easy.kernelMode = KernelMode::Incremental;
    spec.ss.kernelMode = KernelMode::Incremental;
    spec.depth.kernelMode = KernelMode::Incremental;
    spec.is.kernelMode = KernelMode::Incremental;
    const metrics::RunStats inc = core::runSimulation(trace, spec);
    spec.easy.kernelMode = KernelMode::Rebuild;
    spec.ss.kernelMode = KernelMode::Rebuild;
    spec.depth.kernelMode = KernelMode::Rebuild;
    spec.is.kernelMode = KernelMode::Rebuild;
    const metrics::RunStats reb = core::runSimulation(trace, spec);

    EXPECT_EQ(inc.counters.value(Counter::SimSuspensions),
              reb.counters.value(Counter::SimSuspensions))
        << inc.policyName;
    EXPECT_EQ(inc.counters.suspensionsByCategory(),
              reb.counters.suspensionsByCategory())
        << inc.policyName;
    EXPECT_EQ(inc.counters.value(Counter::BackfillStarts),
              reb.counters.value(Counter::BackfillStarts))
        << inc.policyName;
    EXPECT_EQ(inc.counters.value(Counter::SimSuspensions), inc.suspensions)
        << inc.policyName;
    EXPECT_EQ(inc.counters.value(Counter::SimStarts),
              reb.counters.value(Counter::SimStarts))
        << inc.policyName;
  }
}

// --- counters through the Runner --------------------------------------------

TEST(RunnerCounters, DeterministicAcrossThreadCounts) {
  const auto trace =
      core::shareTrace(workload::generateTrace(workload::sdscConfig(250, 9)));
  const auto batch = [&trace] {
    std::vector<core::RunRequest> requests;
    for (const core::PolicySpec& spec : core::ssSchemeSet()) {
      core::RunRequest request;
      request.trace = trace;
      request.spec = spec;
      requests.push_back(std::move(request));
    }
    return requests;
  };
  core::Runner one({.threads = 1});
  const auto baseline = one.runAll(batch());
  for (const std::size_t threads : {2u, 8u}) {
    core::Runner runner({.threads = threads});
    const auto results = runner.runAll(batch());
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_EQ(results[i].stats.counters, baseline[i].stats.counters)
          << results[i].policyName << " at " << threads << " threads";
  }
}

TEST(RunnerCounters, CountersSurviveTheJsonRoundTrip) {
  const auto trace = workload::generateTrace(workload::sdscConfig(150, 4));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::SelectiveSuspension;
  const metrics::RunStats stats = core::runSimulation(trace, spec);
  metrics::JsonOptions options;
  options.includeJobs = false;
  const std::string json = metrics::runStatsJson(stats, options);
  std::string error;
  EXPECT_TRUE(metrics::validateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.suspensions\""), std::string::npos);
}

}  // namespace
}  // namespace sps
