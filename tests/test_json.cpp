// Unit tests: metrics JSON serialization — writer structure, escaping,
// number round-tripping, RunStats schema.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/simulation.hpp"
#include "helpers.hpp"
#include "metrics/json.hpp"
#include "workload/synthetic.hpp"

namespace sps::metrics {
namespace {

TEST(JsonWriter, CompactObjectAndArray) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.beginObject()
      .field("name", "x")
      .field("n", std::int64_t{3})
      .key("list")
      .beginArray()
      .value(std::int64_t{1})
      .value(std::int64_t{2})
      .endArray()
      .endObject();
  EXPECT_EQ(os.str(), R"({"name":"x","n":3,"list":[1,2]})");
}

TEST(JsonWriter, IndentedOutput) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.beginObject().field("a", std::int64_t{1}).endObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.value("quote\" slash\\ tab\t nl\n ctrl\x01");
  EXPECT_EQ(os.str(), R"("quote\" slash\\ tab\t nl\n ctrl\u0001")");
}

TEST(JsonWriter, DoublesRoundTrip) {
  for (double x : {0.1, 1.0 / 3.0, 12345.6789, 1e-300, -2.5}) {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.value(x);
    EXPECT_EQ(std::stod(os.str()), x) << os.str();
  }
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.beginArray()
      .value(std::numeric_limits<double>::infinity())
      .value(std::nan(""))
      .endArray();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.beginObject().key("a").beginArray().endArray().endObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": []\n}");
}

TEST(RunStatsJson, ContainsSchemaFields) {
  const auto trace = test::makeTrace(8, {{0, 100, 4}, {10, 50, 2}});
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Easy;
  const RunStats stats = core::runSimulation(trace, spec);
  const std::string json = runStatsJson(stats);
  for (const char* field :
       {"\"policy\"", "\"trace\"", "\"jobCount\": 2", "\"meanBoundedSlowdown\"",
        "\"meanTurnaround\"", "\"utilization\"", "\"steadyUtilization\"",
        "\"span\"", "\"suspensions\"", "\"eventsProcessed\"", "\"jobs\"",
        "\"suspendCount\"", "\"firstStart\""})
    EXPECT_NE(json.find(field), std::string::npos) << field;
}

TEST(RunStatsJson, IncludeJobsOff) {
  const auto trace = test::makeTrace(8, {{0, 100, 4}});
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::Easy;
  const RunStats stats = core::runSimulation(trace, spec);
  JsonOptions options;
  options.includeJobs = false;
  const std::string json = runStatsJson(stats, options);
  EXPECT_EQ(json.find("\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"jobCount\": 1"), std::string::npos);
}

TEST(RunStatsJson, EqualStatsHaveEqualJson) {
  const auto trace =
      workload::generateTrace(workload::sdscConfig(120, 9));
  core::PolicySpec spec;
  spec.kind = core::PolicyKind::SelectiveSuspension;
  const RunStats a = core::runSimulation(trace, spec);
  const RunStats b = core::runSimulation(trace, spec);
  EXPECT_EQ(runStatsJson(a), runStatsJson(b));
}

}  // namespace
}  // namespace sps::metrics
