// Unit tests: sched::AvailabilityProfile (the backfilling substrate).
#include <gtest/gtest.h>

#include "sched/availability_profile.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sps::sched {
namespace {

TEST(Profile, AllFreeInitially) {
  AvailabilityProfile p(100, 64);
  EXPECT_EQ(p.freeAt(100), 64u);
  EXPECT_EQ(p.freeAt(1000000), 64u);
  EXPECT_EQ(p.origin(), 100);
  EXPECT_EQ(p.totalProcs(), 64u);
}

TEST(Profile, QueryBeforeOriginThrows) {
  AvailabilityProfile p(100, 64);
  EXPECT_THROW((void)p.freeAt(99), InvariantError);
}

TEST(Profile, AddBusySubtractsOverInterval) {
  AvailabilityProfile p(0, 10);
  p.addBusy(10, 20, 4);
  EXPECT_EQ(p.freeAt(0), 10u);
  EXPECT_EQ(p.freeAt(9), 10u);
  EXPECT_EQ(p.freeAt(10), 6u);
  EXPECT_EQ(p.freeAt(19), 6u);
  EXPECT_EQ(p.freeAt(20), 10u);
}

TEST(Profile, OverlappingIntervalsStack) {
  AvailabilityProfile p(0, 10);
  p.addBusy(0, 100, 3);
  p.addBusy(50, 150, 3);
  EXPECT_EQ(p.freeAt(0), 7u);
  EXPECT_EQ(p.freeAt(50), 4u);
  EXPECT_EQ(p.freeAt(99), 4u);
  EXPECT_EQ(p.freeAt(100), 7u);
  EXPECT_EQ(p.freeAt(149), 7u);
  EXPECT_EQ(p.freeAt(150), 10u);
}

TEST(Profile, AddBusyClampsToOrigin) {
  AvailabilityProfile p(100, 10);
  p.addBusy(0, 200, 5);  // starts before the origin
  EXPECT_EQ(p.freeAt(100), 5u);
  EXPECT_EQ(p.freeAt(200), 10u);
}

TEST(Profile, EmptyIntervalIsNoop) {
  AvailabilityProfile p(0, 10);
  p.addBusy(50, 50, 5);
  p.addBusy(60, 40, 5);
  p.addBusy(10, 20, 0);
  EXPECT_EQ(p.freeAt(50), 10u);
  EXPECT_EQ(p.stepCount(), 1u);
}

TEST(Profile, OversubscriptionThrows) {
  AvailabilityProfile p(0, 10);
  p.addBusy(0, 100, 8);
  EXPECT_THROW(p.addBusy(50, 60, 3), InvariantError);
}

TEST(Profile, MinFreeInWindow) {
  AvailabilityProfile p(0, 10);
  p.addBusy(10, 20, 4);
  p.addBusy(15, 30, 2);
  EXPECT_EQ(p.minFreeIn(0, 10), 10u);
  EXPECT_EQ(p.minFreeIn(0, 11), 6u);
  EXPECT_EQ(p.minFreeIn(12, 18), 4u);
  EXPECT_EQ(p.minFreeIn(20, 40), 8u);
  EXPECT_EQ(p.minFreeIn(30, 40), 10u);
}

TEST(Profile, FindAnchorImmediateWhenFree) {
  AvailabilityProfile p(0, 10);
  EXPECT_EQ(p.findAnchor(0, 100, 10), 0);
  EXPECT_EQ(p.findAnchor(42, 100, 10), 42);
}

TEST(Profile, FindAnchorWaitsForRelease) {
  AvailabilityProfile p(0, 10);
  p.addBusy(0, 50, 8);  // only 2 free until t=50
  EXPECT_EQ(p.findAnchor(0, 10, 2), 0);
  EXPECT_EQ(p.findAnchor(0, 10, 3), 50);
}

TEST(Profile, FindAnchorSkipsTooShortHoles) {
  AvailabilityProfile p(0, 10);
  // Free window [20, 30) of 6 procs; then busy again until 100.
  p.addBusy(0, 20, 8);
  p.addBusy(30, 100, 8);
  // A 6-proc job of duration 10 fits in the hole:
  EXPECT_EQ(p.findAnchor(0, 10, 6), 20);
  // Duration 11 does not; must wait to t=100:
  EXPECT_EQ(p.findAnchor(0, 11, 6), 100);
}

TEST(Profile, FindAnchorRespectsNotBefore) {
  AvailabilityProfile p(0, 10);
  p.addBusy(0, 20, 8);
  p.addBusy(30, 100, 8);
  EXPECT_EQ(p.findAnchor(25, 5, 6), 25);
  EXPECT_EQ(p.findAnchor(31, 5, 6), 100);
}

TEST(Profile, FindAnchorWiderThanMachineThrows) {
  AvailabilityProfile p(0, 10);
  EXPECT_THROW((void)p.findAnchor(0, 10, 11), InvariantError);
}

TEST(Profile, FindAnchorZeroDurationThrows) {
  AvailabilityProfile p(0, 10);
  EXPECT_THROW((void)p.findAnchor(0, 0, 1), InvariantError);
}

// Property: findAnchor returns the *earliest* feasible anchor. Verify by
// brute force against a randomly built profile.
class ProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileProperty, AnchorIsEarliestFeasible) {
  Rng rng(GetParam());
  AvailabilityProfile p(0, 32);
  // Random busy intervals, rejecting oversubscription.
  for (int i = 0; i < 12; ++i) {
    const Time s = rng.uniformInt(0, 200);
    const Time e = s + rng.uniformInt(1, 80);
    const auto procs = static_cast<std::uint32_t>(rng.uniformInt(1, 8));
    if (p.minFreeIn(s, e) >= procs) p.addBusy(s, e, procs);
  }
  for (int q = 0; q < 20; ++q) {
    const auto procs = static_cast<std::uint32_t>(rng.uniformInt(1, 32));
    const Time dur = rng.uniformInt(1, 60);
    const Time notBefore = rng.uniformInt(0, 150);
    const Time anchor = p.findAnchor(notBefore, dur, procs);
    ASSERT_GE(anchor, notBefore);
    // Feasible at the anchor:
    EXPECT_GE(p.minFreeIn(anchor, anchor + dur), procs);
    // Not feasible at any earlier second (brute force over the window):
    for (Time t = notBefore; t < anchor; ++t)
      EXPECT_LT(p.minFreeIn(t, t + dur), procs)
          << "anchor " << anchor << " not minimal at t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sps::sched
