// Unit tests: gang scheduling (Ousterhout-matrix time slicing) — the
// Section II alternative to backfilling, built on the same suspend/resume
// machinery.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sched/gang.hpp"
#include "sched/overhead.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

GangConfig cfg(Time quantum = 600, std::size_t slots = 4) {
  GangConfig c;
  c.slotQuantum = quantum;
  c.maxSlots = slots;
  return c;
}

TEST(Gang, ConfigRejectsBadValues) {
  GangConfig c;
  c.slotQuantum = 0;
  EXPECT_THROW(GangScheduler{c}, InvariantError);
  c = {};
  c.maxSlots = 0;
  EXPECT_THROW(GangScheduler{c}, InvariantError);
}

TEST(Gang, NameCarriesSlotCount) {
  EXPECT_EQ(GangScheduler(cfg(600, 3)).name(), "Gang(slots=3)");
}

TEST(Gang, SingleJobRunsWithoutSlicing) {
  GangScheduler policy(cfg());
  const auto trace = makeTrace(8, {{0, 5000, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 5000);
  EXPECT_EQ(s.exec(0).suspendCount, 0u);
  EXPECT_EQ(policy.switches(), 0u);
}

TEST(Gang, CoResidentJobsShareOneSlot) {
  // Two 4-proc jobs fit one row of an 8-proc machine: no slicing.
  GangScheduler policy(cfg());
  const auto trace = makeTrace(8, {{0, 5000, 4}, {10, 5000, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).finish, 5000);
  EXPECT_EQ(s.exec(1).finish, 5010);
  EXPECT_EQ(s.totalSuspensions(), 0u);
}

TEST(Gang, ConflictingJobsTimeSlice) {
  // Two machine-wide jobs: they alternate every quantum, each accruing
  // half the wall-clock, finishing around 2 x runtime.
  GangScheduler policy(cfg(600));
  const auto trace = makeTrace(8, {{0, 3600, 8}, {0, 3600, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GT(policy.switches(), 5u);
  EXPECT_GE(s.totalSuspensions(), 5u);
  // Both finish near 2 x 3600 (within one quantum of slack).
  EXPECT_NEAR(static_cast<double>(s.exec(0).finish), 7200.0, 601.0);
  EXPECT_NEAR(static_cast<double>(s.exec(1).finish), 7200.0, 601.0);
}

TEST(Gang, SlicedJobResumesOnSameProcessors) {
  GangScheduler policy(cfg(600));
  const auto trace = makeTrace(8, {{0, 3600, 8}, {0, 3600, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).procs, sim::ProcSet::firstN(8));
  EXPECT_EQ(s.exec(1).procs, sim::ProcSet::firstN(8));
}

TEST(Gang, ShortJobGetsServiceDespiteLongRunner) {
  // The gang pitch: a short job arriving under a long machine-wide job
  // starts within ~a quantum, not after hours.
  GangScheduler policy(cfg(600));
  const auto trace = makeTrace(8, {{0, 36000, 8}, {100, 300, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_LE(s.exec(1).firstStart, 700);
  EXPECT_EQ(s.state(1), sim::JobState::Finished);
}

TEST(Gang, MatrixOverflowQueuesFifo) {
  // maxSlots = 2: the third machine-wide job waits in the FIFO queue until
  // a row frees.
  GangScheduler policy(cfg(600, 2));
  const auto trace =
      makeTrace(8, {{0, 1200, 8}, {0, 1200, 8}, {0, 1200, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  // Job 2 cannot start until job 0 or 1 completes (~2400 s wall-clock
  // because the first two share the machine).
  EXPECT_GE(s.exec(2).firstStart, 1200);
  EXPECT_EQ(s.state(2), sim::JobState::Finished);
}

TEST(Gang, RuntimeDilationScalesWithSlots) {
  // 3 machine-wide jobs, 3 slots: each gets ~1/3 of the machine time.
  GangScheduler policy(cfg(600, 3));
  const auto trace =
      makeTrace(8, {{0, 2400, 8}, {0, 2400, 8}, {0, 2400, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  Time lastFinish = 0;
  for (JobId i = 0; i < 3; ++i)
    lastFinish = std::max(lastFinish, s.exec(i).finish);
  EXPECT_NEAR(static_cast<double>(lastFinish), 7200.0, 601.0);
}

TEST(Gang, NewArrivalJoinsRowWithRoom) {
  // Rows: {8-proc job} and later a 4-proc job; a second 4-proc arrival
  // must join the 4-proc row, not open a third.
  GangScheduler policy(cfg(600, 4));
  const auto trace =
      makeTrace(8, {{0, 7200, 8}, {10, 7200, 4}, {20, 7200, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(policy.slotCount(), 0u);  // matrix empty at the end
  // Jobs 1 and 2 shared a row: they ran simultaneously at least once —
  // their finishes are within a quantum of each other.
  EXPECT_NEAR(static_cast<double>(s.exec(1).finish),
              static_cast<double>(s.exec(2).finish), 700.0);
}

TEST(Gang, WithOverheadSwitchesPayTheSweep) {
  FixedOverhead overhead(30, 30);
  GangScheduler policy(cfg(600));
  const auto trace = makeTrace(8, {{0, 1800, 8}, {0, 1800, 8}});
  sim::Simulator::Config config;
  config.overhead = &overhead;
  sim::Simulator s(trace, policy, config);
  s.run();
  // Every switch costs a write-out + read-back on top of the compute.
  EXPECT_GT(s.exec(0).overheadTotal() + s.exec(1).overheadTotal(), 0);
  EXPECT_GE(std::max(s.exec(0).finish, s.exec(1).finish), 3600 + 60);
  for (JobId i = 0; i < 2; ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(Gang, BusyStreamCompletesAndAudits) {
  GangScheduler policy(cfg(300, 3));
  std::vector<J> jobs;
  for (int i = 0; i < 60; ++i)
    jobs.push_back({i * 40, (i % 7 == 0) ? Time{4000} : Time{250},
                    static_cast<std::uint32_t>(1 + (i % 8))});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  s.auditState();
  for (JobId i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(Gang, QuantumNotPostponedByArrivals) {
  // A steady drizzle of tiny jobs must not stop the two big jobs from
  // alternating (the re-arm bug this guards against postponed the switch
  // on every arrival).
  GangScheduler policy(cfg(600, 4));
  std::vector<J> jobs = {{0, 7200, 8}, {0, 7200, 8}};
  for (int i = 0; i < 50; ++i) jobs.push_back({i * 120, 60, 1});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(policy.switches(), 10u);
  // Job 1 (second wide job) must have computed long before job 0 finished.
  EXPECT_GE(s.exec(1).suspendCount, 1u);
}

}  // namespace
}  // namespace sps::sched
