// Unit tests: Immediate Service (Chiang & Vernon comparator, Section II-C).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sched/immediate_service.hpp"
#include "sim/simulator.hpp"

namespace sps::sched {
namespace {

using test::J;
using test::makeTrace;

TEST(IS, ArrivingJobStartsImmediatelyOnFreeProcs) {
  ImmediateService policy;
  const auto trace = makeTrace(8, {{0, 100, 4}, {10, 100, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).firstStart, 0);
  EXPECT_EQ(s.exec(1).firstStart, 10);
}

TEST(IS, ArrivalPreemptsToGetItsTimeslice) {
  // Machine full with an old long-running job (past its first quantum):
  // a new arrival suspends it immediately.
  ImmediateService policy;
  const auto trace = makeTrace(4, {{0, 7200, 4}, {1000, 60, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 1000);  // immediate service
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
}

TEST(IS, VictimInFirstQuantumIsProtected) {
  // Job 0 started 60 s ago (inside its quantum): the new arrival cannot
  // suspend it before the quantum elapses at t=600. At expiry job 0 is
  // suspended under contention and job 1 finally runs.
  ImmediateService policy;
  const auto trace = makeTrace(4, {{0, 800, 4}, {60, 50, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(1).firstStart, 600);   // not a second earlier
  EXPECT_EQ(s.exec(0).suspendCount, 1u);  // exactly the quantum suspension
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
}

TEST(IS, VictimChosenByLowestInstantaneousXfactor) {
  // Two old runners: A ran 7000 s with no wait (ix ~ 1), B waited 1000 s
  // then ran 2000 s (ix = 1.5). A has the lower ix and must be the victim.
  ImmediateService policy;
  // B waits behind A-start: arrange with a filler so B's wait is real.
  const auto trace = makeTrace(
      8, {{0, 20000, 4},     // A: starts at 0 on procs {0-3}
          {0, 20000, 6},     // B: cannot start (needs 6, only 4 free)
          {12000, 60, 4}});  // arrival that must preempt someone
  sim::Simulator s(trace, policy);
  s.run();
  // At t=12000: A has run 12000 with wait 0 -> ix = 1.
  // B started when? B queued at 0, A holds 4 procs; B needs 6 -> B waits
  // until... nothing frees; B gets immediate service by suspending A once
  // A's quantum passed (retry loop). So the timeline self-organizes; the
  // key assertions are conservation and that the short job got service.
  EXPECT_EQ(s.exec(2).firstStart, 12000);
  for (JobId i = 0; i < 3; ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
}

TEST(IS, QuantumExpirySuspendsUnderContention) {
  // Long job starts; another long job queued (contention). At quantum
  // expiry (600 s) the runner is suspended in favour of the waiter.
  ImmediateService policy;
  const auto trace = makeTrace(4, {{0, 7200, 4}, {5, 7200, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_GE(s.exec(0).suspendCount, 1u);
  // Job 1 got the machine shortly after job 0's quantum.
  EXPECT_LE(s.exec(1).firstStart, 700);
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
  EXPECT_EQ(s.state(1), sim::JobState::Finished);
}

TEST(IS, NoContentionMeansNoQuantumSuspension) {
  ImmediateService policy;
  const auto trace = makeTrace(4, {{0, 7200, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).suspendCount, 0u);
  EXPECT_EQ(s.exec(0).finish, 7200);
}

TEST(IS, ShortJobNeverSuspendedByQuantum) {
  // A job shorter than the quantum completes inside its guaranteed slice.
  ImmediateService policy;
  const auto trace = makeTrace(4, {{0, 300, 4}, {10, 300, 4}, {20, 300, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).suspendCount, 0u);
  EXPECT_EQ(s.exec(0).finish, 300);
}

TEST(IS, WideJobEventuallyServedViaRetry) {
  // A machine-wide arrival cannot be served while the current runner is in
  // its quantum; the retry loop must serve it afterwards.
  ImmediateService policy;
  const auto trace = makeTrace(8, {{0, 4000, 4}, {10, 60, 8}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.state(1), sim::JobState::Finished);
  // Served within ~ a quantum of its arrival, not after job 0's 4000 s.
  EXPECT_LT(s.exec(1).firstStart, 1500);
}

TEST(IS, SuspendedJobResumesOnItsProcessors) {
  ImmediateService policy;
  const auto trace = makeTrace(4, {{0, 7200, 4}, {1000, 60, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_EQ(s.exec(0).procs, sim::ProcSet::firstN(4));
  EXPECT_EQ(s.state(0), sim::JobState::Finished);
}

TEST(IS, CustomQuantumRespected) {
  IsConfig cfg;
  cfg.quantum = 100;
  ImmediateService policy(cfg);
  const auto trace = makeTrace(4, {{0, 7200, 4}, {5, 7200, 4}});
  sim::Simulator s(trace, policy);
  s.run();
  EXPECT_LE(s.exec(1).firstStart, 150);  // preempted at the 100 s quantum
}

TEST(IS, ZeroQuantumRejected) {
  IsConfig cfg;
  cfg.quantum = 0;
  EXPECT_THROW(ImmediateService{cfg}, InvariantError);
}

TEST(IS, EverythingFinishesOnBusyStream) {
  ImmediateService policy;
  std::vector<J> jobs;
  for (int i = 0; i < 40; ++i)
    jobs.push_back({i * 50, (i % 5 == 0) ? Time{5000} : Time{120},
                    static_cast<std::uint32_t>(1 + (i % 8))});
  const auto trace = makeTrace(8, jobs);
  sim::Simulator s(trace, policy);
  s.run();
  for (JobId i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(s.state(i), sim::JobState::Finished);
  s.auditState();
}

}  // namespace
}  // namespace sps::sched
