#!/usr/bin/env python3
"""perf_guard.py — fail the perf-smoke lane on a real throughput regression.

Compares a freshly generated engine kernel-sweep report (the JSON that
bench_micro_engine writes as BENCH_engine.json) against the committed
baseline at the repository root. A lane regresses when its incremental
events/s falls more than the tolerance below the baseline's — 20% by
default, chosen well above the ~10% run-to-run noise of the sweep so the
guard only trips on genuine regressions, not scheduler jitter.

Usage:
  perf_guard.py --baseline BENCH_engine.json --candidate new.json
  perf_guard.py --selftest

Exit status: 0 when every lane holds (or improves), 1 on any regression or
malformed report. Lanes present in only one report are reported but do not
fail the guard (the benchmark may grow lanes; the baseline catches up when
it is next regenerated).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.20


def lanes(report: dict) -> dict[str, float]:
    """Map policy name -> incremental events/s, skipping malformed entries."""
    out: dict[str, float] = {}
    for entry in report.get("policies", []):
        name = entry.get("policy")
        inc = entry.get("incremental", {})
        rate = inc.get("eventsPerSec")
        if isinstance(name, str) and isinstance(rate, (int, float)) and rate > 0:
            out[name] = float(rate)
    return out


def compare(baseline: dict, candidate: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    base = lanes(baseline)
    cand = lanes(candidate)
    if not base:
        return ["baseline report has no usable lanes"]
    if not cand:
        return ["candidate report has no usable lanes"]
    failures = []
    for name, rate in sorted(base.items()):
        if name not in cand:
            print(f"note: lane '{name}' missing from candidate (not failing)")
            continue
        floor = rate * (1.0 - tolerance)
        got = cand[name]
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"{name}: baseline {rate:,.0f} ev/s, candidate {got:,.0f} ev/s, "
              f"floor {floor:,.0f} ({verdict})")
        if got < floor:
            failures.append(
                f"lane '{name}' regressed: {got:,.0f} ev/s < floor "
                f"{floor:,.0f} ev/s ({(1 - got / rate) * 100:.1f}% below "
                f"baseline {rate:,.0f})")
    for name in sorted(set(cand) - set(base)):
        print(f"note: new lane '{name}' has no baseline (not checked)")
    return failures


def selftest() -> int:
    """Exercise the comparator on synthetic reports; used as a ctest."""
    def report(rates: dict[str, float]) -> dict:
        return {"policies": [
            {"policy": n, "incremental": {"eventsPerSec": r}}
            for n, r in rates.items()]}

    base = report({"fcfs": 1_000_000.0, "ss": 200_000.0})
    cases = [
        # (candidate, expect_failures, label)
        (report({"fcfs": 1_000_000.0, "ss": 200_000.0}), 0, "identical"),
        (report({"fcfs": 900_000.0, "ss": 161_000.0}), 0, "within tolerance"),
        (report({"fcfs": 1_500_000.0, "ss": 400_000.0}), 0, "improved"),
        (report({"fcfs": 799_999.0, "ss": 200_000.0}), 1, "fcfs regressed"),
        (report({"fcfs": 500_000.0, "ss": 100_000.0}), 2, "both regressed"),
        (report({"fcfs": 1_000_000.0}), 0, "lane missing (warn only)"),
        ({"policies": []}, 1, "empty candidate"),
    ]
    ok = True
    for candidate, expected, label in cases:
        got = len(compare(base, candidate))
        status = "pass" if got == expected else "FAIL"
        if got != expected:
            ok = False
        print(f"selftest [{label}]: expected {expected} failure(s), "
              f"got {got} — {status}")
    # Empty baseline is always a failure.
    if len(compare({"policies": []}, base)) != 1:
        print("selftest [empty baseline]: FAIL")
        ok = False
    print("selftest:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=Path,
                    help="committed BENCH_engine.json to guard against")
    ap.add_argument("--candidate", type=Path,
                    help="freshly generated sweep report")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional drop (default %(default)s)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the comparator's self-checks and exit")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        ap.error("--baseline and --candidate are required (or --selftest)")
    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_guard: cannot read reports: {e}", file=sys.stderr)
        return 1
    failures = compare(baseline, candidate, args.tolerance)
    for f in failures:
        print(f"perf_guard: {f}", file=sys.stderr)
    print("perf_guard:", "PASS" if not failures else "FAIL")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
