#!/usr/bin/env bash
# Line-coverage report for the sps library (src/ only).
#
# Configures build-cov with -DSPS_COVERAGE=ON, runs the full ctest suite,
# then aggregates per-file line coverage with plain gcov — no gcovr/lcov
# dependency. The summary table and the total land on stdout; keep the
# total in docs/API.md up to date when it moves materially.
#
#   tools/coverage.sh              # full suite
#   tools/coverage.sh -L check     # any extra args go to ctest
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-cov"

cmake -B "$build" -S "$repo" -DSPS_COVERAGE=ON >/dev/null
cmake --build "$build" -j"$(nproc)" >/dev/null

# Fail loudly when the build tree was NOT configured with SPS_COVERAGE=ON
# (e.g. a stale build-cov from before the flag, or a cache that pinned it
# OFF): running the suite would silently produce an empty report.
if ! grep -q '^SPS_COVERAGE:BOOL=ON$' "$build/CMakeCache.txt"; then
  echo "coverage.sh: $build is not configured with SPS_COVERAGE=ON" \
       "(stale cache?); delete build-cov and re-run" >&2
  exit 1
fi

(cd "$build" && ctest --output-on-failure "$@" >/dev/null)

# gcov writes per-source .gcov files; run it object-dir by object-dir so
# every translation unit of the sps library is covered exactly once.
gcovdir="$build/gcov-report"
rm -rf "$gcovdir" && mkdir -p "$gcovdir"
if [ -z "$(find "$build/src" -name '*.gcda' -print -quit)" ]; then
  echo "coverage.sh: no .gcda files under $build/src — the instrumented" \
       "library never ran (SPS_COVERAGE not compiled in, or the ctest" \
       "selection executed nothing); refusing to report 0%" >&2
  exit 1
fi
find "$build/src" -name '*.gcda' -print0 |
  (cd "$gcovdir" && xargs -0 gcov -r -s "$repo" >/dev/null 2>&1 || true)

# Aggregate "Lines executed" per src/ file from the .gcov outputs:
# a line counts as instrumented when its count field is numeric or '#####'
# (never executed); '-' lines carry no code.
python3 - "$gcovdir" "$repo" <<'EOF'
import os, sys
gcovdir, repo = sys.argv[1], sys.argv[2]
rows = []
for name in sorted(os.listdir(gcovdir)):
    if not name.endswith('.gcov'):
        continue
    src = None
    covered = instrumented = 0
    with open(os.path.join(gcovdir, name)) as f:
        for line in f:
            parts = line.split(':', 2)
            if len(parts) < 3:
                continue
            count = parts[0].strip()
            if parts[1].strip() == '0':
                if parts[2].startswith('Source:'):
                    src = parts[2][len('Source:'):].strip()
                continue
            if count == '-':
                continue
            instrumented += 1
            if count != '#####' and count != '=====':
                covered += 1
    if not src or instrumented == 0:
        continue
    rel = os.path.relpath(os.path.join(repo, src), repo)
    if not rel.startswith('src/'):
        continue  # report the library, not tests/tools/gtest
    rows.append((rel, covered, instrumented))

width = max(len(r[0]) for r in rows)
total_cov = total_ins = 0
for rel, covered, instrumented in rows:
    total_cov += covered
    total_ins += instrumented
    print(f"{rel:<{width}}  {covered:>5}/{instrumented:<5} "
          f"{100.0 * covered / instrumented:6.1f}%")
print('-' * (width + 22))
print(f"{'TOTAL':<{width}}  {total_cov:>5}/{total_ins:<5} "
      f"{100.0 * total_cov / total_ins:6.1f}%")
EOF
