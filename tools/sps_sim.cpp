// sps_sim — command-line driver for the scheduling simulator.
//
// Run any scheduler over an SWF log or a calibrated synthetic workload and
// print the paper's metrics:
//
//   sps_sim --preset sdsc --policy ss --sf 2
//   sps_sim --trace CTC-SP2-1996-3.1-cln.swf --procs 430 --policy tss
//   sps_sim --preset ctc --policy gang --gang-slots 3 --overhead --worst
//   sps_sim --preset kth --load-factor 1.3 --policy easy --csv
//
// Everything is deterministic in --seed.
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "metrics/report.hpp"
#include "sched/overhead.hpp"
#include "util/table.hpp"
#include "workload/estimate_model.hpp"
#include "workload/summary.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace {

using namespace sps;

struct CliOptions {
  std::string traceFile;
  std::uint32_t procs = 0;
  std::string preset = "sdsc";
  std::size_t jobs = 10000;
  std::uint64_t seed = 42;
  std::optional<double> load;
  double loadFactor = 1.0;
  std::string policy = "ss";
  double sf = 2.0;
  std::string estimates = "accurate";
  bool overhead = false;
  std::size_t gangSlots = 4;
  Time gangQuantum = 600;
  std::size_t depth = 2;
  bool csv = false;
  bool worst = false;
  bool summaryOnly = false;
};

void printUsage(std::ostream& os) {
  os << R"(sps_sim — parallel job scheduling simulator
(Kettimuthu et al., "Selective Preemption Strategies for Parallel Job
Scheduling", reproduced in C++20)

Workload (choose one):
  --trace FILE --procs N     Standard Workload Format log on an N-processor
                             machine
  --preset ctc|sdsc|kth      calibrated synthetic workload (default: sdsc)
      --jobs N               synthetic job count        (default: 10000)
      --seed S               RNG seed                   (default: 42)
      --load F               offered-load override      (default: preset)
  --load-factor F            divide arrival times by F  (Section VI)
  --estimates MODEL          accurate | modal | uniform (Section V)

Scheduler:
  --policy NAME              fcfs | conservative | easy | sjf | ss | tss |
                             tss-online | is | gang | depth  (default: ss)
      --sf F                 suspension factor for ss/tss (default: 2)
      --gang-slots N         gang multiprogramming level (default: 4)
      --gang-quantum SEC     gang time slice             (default: 600)
      --depth K              reservation depth for depth  (default: 2)
  --overhead                 2 MB/s disk-swap suspension cost (Section V-A)

Output:
  --csv                      CSV tables instead of aligned ASCII
  --worst                    also print worst-case grids
  --summary-only             one-line summary, no grids
  --help
)";
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "sps_sim: " << message << "\n(--help for usage)\n";
  std::exit(2);
}

CliOptions parseArgs(int argc, char** argv) {
  CliOptions opt;
  std::vector<std::string> args(argv + 1, argv + argc);
  auto next = [&](std::size_t& i, const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) fail(flag + " requires a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    try {
      if (a == "--help" || a == "-h") {
        printUsage(std::cout);
        std::exit(0);
      } else if (a == "--trace") {
        opt.traceFile = next(i, a);
      } else if (a == "--procs") {
        opt.procs = static_cast<std::uint32_t>(std::stoul(next(i, a)));
      } else if (a == "--preset") {
        opt.preset = next(i, a);
      } else if (a == "--jobs") {
        opt.jobs = std::stoul(next(i, a));
      } else if (a == "--seed") {
        opt.seed = std::stoull(next(i, a));
      } else if (a == "--load") {
        opt.load = std::stod(next(i, a));
      } else if (a == "--load-factor") {
        opt.loadFactor = std::stod(next(i, a));
      } else if (a == "--policy") {
        opt.policy = next(i, a);
      } else if (a == "--sf") {
        opt.sf = std::stod(next(i, a));
      } else if (a == "--estimates") {
        opt.estimates = next(i, a);
      } else if (a == "--overhead") {
        opt.overhead = true;
      } else if (a == "--gang-slots") {
        opt.gangSlots = std::stoul(next(i, a));
      } else if (a == "--gang-quantum") {
        opt.gangQuantum = std::stol(next(i, a));
      } else if (a == "--depth") {
        opt.depth = std::stoul(next(i, a));
      } else if (a == "--csv") {
        opt.csv = true;
      } else if (a == "--worst") {
        opt.worst = true;
      } else if (a == "--summary-only") {
        opt.summaryOnly = true;
      } else {
        fail("unknown option: " + a);
      }
    } catch (const std::invalid_argument&) {
      fail("bad numeric value for " + a);
    } catch (const std::out_of_range&) {
      fail("value out of range for " + a);
    }
  }
  return opt;
}

workload::Trace buildWorkload(const CliOptions& opt) {
  workload::Trace trace;
  if (!opt.traceFile.empty()) {
    if (opt.procs == 0) fail("--trace requires --procs");
    workload::SwfReadStats stats;
    trace = workload::readSwfFile(opt.traceFile, opt.traceFile, opt.procs,
                                  &stats);
    std::cerr << "read " << stats.jobsAccepted << " jobs ("
              << stats.droppedNonPositiveRuntime +
                     stats.droppedNonPositiveProcs + stats.droppedTooWide
              << " dropped, " << stats.estimatesClamped
              << " estimates clamped)\n";
  } else {
    workload::SyntheticConfig cfg;
    if (opt.preset == "ctc") cfg = workload::ctcConfig(opt.jobs, opt.seed);
    else if (opt.preset == "sdsc")
      cfg = workload::sdscConfig(opt.jobs, opt.seed);
    else if (opt.preset == "kth")
      cfg = workload::kthConfig(opt.jobs, opt.seed);
    else fail("unknown preset: " + opt.preset);
    if (opt.load) cfg.offeredLoad = *opt.load;
    trace = workload::generateTrace(cfg);
  }

  if (opt.estimates == "modal") {
    workload::EstimateModelConfig est;
    est.kind = workload::EstimateModelKind::Modal;
    est.seed = opt.seed + 1;
    applyEstimates(trace, est);
  } else if (opt.estimates == "uniform") {
    workload::EstimateModelConfig est;
    est.kind = workload::EstimateModelKind::UniformFactor;
    est.seed = opt.seed + 1;
    applyEstimates(trace, est);
  } else if (opt.estimates != "accurate") {
    fail("unknown estimate model: " + opt.estimates);
  }

  if (opt.loadFactor != 1.0)
    trace = workload::scaleLoad(trace, opt.loadFactor);
  return trace;
}

core::PolicySpec buildPolicy(const CliOptions& opt,
                             const workload::Trace& trace) {
  core::PolicySpec spec;
  if (opt.policy == "fcfs") {
    spec.kind = core::PolicyKind::Fcfs;
  } else if (opt.policy == "conservative") {
    spec.kind = core::PolicyKind::Conservative;
  } else if (opt.policy == "easy") {
    spec.kind = core::PolicyKind::Easy;
  } else if (opt.policy == "sjf") {
    spec.kind = core::PolicyKind::Easy;
    spec.easy.order = sched::QueueOrder::ShortestFirst;
  } else if (opt.policy == "ss") {
    spec.kind = core::PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = opt.sf;
  } else if (opt.policy == "tss") {
    spec.kind = core::PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = opt.sf;
    std::cerr << "calibrating TSS limits from an NS run...\n";
    spec.ss.tssLimits = core::bootstrapTssLimits(trace);
  } else if (opt.policy == "tss-online") {
    spec.kind = core::PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = opt.sf;
    spec.ss.tssOnlineMultiplier = 1.5;
  } else if (opt.policy == "is") {
    spec.kind = core::PolicyKind::ImmediateService;
  } else if (opt.policy == "gang") {
    spec.kind = core::PolicyKind::Gang;
    spec.gang.maxSlots = opt.gangSlots;
    spec.gang.slotQuantum = opt.gangQuantum;
  } else if (opt.policy == "depth") {
    spec.kind = core::PolicyKind::DepthBackfill;
    spec.depth.depth = opt.depth;
  } else {
    fail("unknown policy: " + opt.policy);
  }
  return spec;
}

void printTable(const Table& table, bool csv) {
  if (csv) table.printCsv(std::cout);
  else table.printAscii(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parseArgs(argc, argv);
  try {
    const workload::Trace trace = buildWorkload(opt);
    const core::PolicySpec spec = buildPolicy(opt, trace);

    std::optional<sched::DiskSwapOverhead> overhead;
    core::SimulationOptions options;
    if (opt.overhead) {
      overhead.emplace(trace, 2.0);
      options.overhead = &*overhead;
    }

    const metrics::RunStats stats =
        core::runSimulation(trace, spec, options);
    std::cout << metrics::summaryLine(stats) << "\n";
    if (opt.summaryOnly) return 0;

    std::cout << "\nWorkload (" << trace.name << ", "
              << trace.machineProcs << " processors):\n";
    printTable(workload::summaryStatsTable(workload::summarizeTrace(trace)),
               opt.csv);

    const auto cat = metrics::categorize16(stats.jobs);
    std::cout << "\nAverage bounded slowdown by category:\n";
    printTable(metrics::categoryGrid16(cat, metrics::Metric::AvgSlowdown),
               opt.csv);
    std::cout << "\nAverage turnaround time (s) by category:\n";
    printTable(
        metrics::categoryGrid16(cat, metrics::Metric::AvgTurnaround, 0),
        opt.csv);
    if (opt.worst) {
      std::cout << "\np95 slowdown by category:\n";
      printTable(metrics::categoryGrid16(cat, metrics::Metric::P95Slowdown),
                 opt.csv);
      std::cout << "\nWorst-case slowdown by category:\n";
      printTable(
          metrics::categoryGrid16(cat, metrics::Metric::WorstSlowdown),
          opt.csv);
      std::cout << "\nWorst-case turnaround time (s) by category:\n";
      printTable(
          metrics::categoryGrid16(cat, metrics::Metric::WorstTurnaround, 0),
          opt.csv);
    }
    return 0;
  } catch (const sps::InputError& e) {
    std::cerr << "sps_sim: input error: " << e.what() << "\n";
    return 1;
  } catch (const sps::InvariantError& e) {
    std::cerr << "sps_sim: internal error: " << e.what() << "\n";
    return 1;
  }
}
