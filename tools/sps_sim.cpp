// sps_sim — command-line driver for the scheduling simulator.
//
// Run any scheduler over an SWF log or a calibrated synthetic workload and
// print the paper's metrics:
//
//   sps_sim --preset sdsc --policy ss --sf 2
//   sps_sim --trace CTC-SP2-1996-3.1-cln.swf --procs 430 --policy tss
//   sps_sim --preset ctc --policy gang --gang-slots 3 --overhead --worst
//   sps_sim --preset kth --load-factor 1.3 --policy easy --csv
//   sps_sim --preset sdsc --compare --threads 8 --json
//
// Everything is deterministic in --seed (independent of --threads).
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/cli_config.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/runner.hpp"
#include "core/simulation.hpp"
#include "metrics/json.hpp"
#include "metrics/report.hpp"
#include "sched/overhead.hpp"
#include "util/table.hpp"
#include "workload/estimate_model.hpp"
#include "workload/summary.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace {

using namespace sps;

struct CliOptions {
  std::string traceFile;
  std::uint32_t procs = 0;
  std::string preset = "sdsc";
  std::size_t jobs = 10000;
  std::uint64_t seed = 42;
  std::optional<double> load;
  double loadFactor = 1.0;
  std::string estimates = "accurate";
  std::string policy = "ss";
  double sf = 2.0;
  bool overhead = false;
  std::size_t gangSlots = 4;
  Time gangQuantum = 600;
  std::size_t depth = 2;
  bool compare = false;
  std::size_t threads = 0;
  bool json = false;
  bool csv = false;
  bool worst = false;
  bool summaryOnly = false;
};

core::CliConfig makeCli(CliOptions& opt) {
  core::CliConfig cli(
      "sps_sim",
      "parallel job scheduling simulator\n(Kettimuthu et al., \"Selective "
      "Preemption Strategies for Parallel Job\nScheduling\", reproduced in "
      "C++20)");
  cli.section("Workload (choose one)");
  cli.option("--trace", &opt.traceFile, "FILE",
             "Standard Workload Format log (requires --procs)");
  cli.option("--procs", &opt.procs, "N", "machine size for --trace");
  cli.option("--preset", &opt.preset, "ctc|sdsc|kth",
             "calibrated synthetic workload (default: sdsc)");
  cli.option("--jobs", &opt.jobs, "N", "synthetic job count (default: 10000)");
  cli.option("--seed", &opt.seed, "S", "RNG seed (default: 42)");
  cli.option("--load", &opt.load, "F", "offered-load override (default: preset)");
  cli.option("--load-factor", &opt.loadFactor, "F",
             "divide arrival times by F (Section VI)");
  cli.option("--estimates", &opt.estimates, "MODEL",
             "accurate | modal | uniform (Section V)");
  cli.section("Scheduler");
  cli.option("--policy", &opt.policy, "NAME",
             "fcfs | conservative | easy | sjf | ss | tss | tss-online | is | "
             "gang | depth (default: ss)");
  cli.option("--sf", &opt.sf, "F", "suspension factor for ss/tss (default: 2)");
  cli.option("--gang-slots", &opt.gangSlots, "N",
             "gang multiprogramming level (default: 4)");
  cli.option("--gang-quantum", &opt.gangQuantum, "SEC",
             "gang time slice (default: 600)");
  cli.option("--depth", &opt.depth, "K",
             "reservation depth for depth (default: 2)");
  cli.flag("--overhead", &opt.overhead,
           "2 MB/s disk-swap suspension cost (Section V-A)");
  cli.section("Execution");
  cli.flag("--compare", &opt.compare,
           "run the paper's scheme set (SS 1.5/2/5, NS, IS; TSS when "
           "--policy tss) instead of one policy");
  cli.option("--threads", &opt.threads, "N",
             "worker threads for --compare (0 = all hardware threads)");
  cli.section("Output");
  cli.flag("--json", &opt.json, "machine-readable RunResult JSON on stdout");
  cli.flag("--csv", &opt.csv, "CSV tables instead of aligned ASCII");
  cli.flag("--worst", &opt.worst, "also print worst-case grids");
  cli.flag("--summary-only", &opt.summaryOnly,
           "one-line summary, no grids");
  return cli;
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "sps_sim: " << message << "\n(--help for usage)\n";
  std::exit(2);
}

workload::Trace buildWorkload(const CliOptions& opt) {
  workload::Trace trace;
  if (!opt.traceFile.empty()) {
    if (opt.procs == 0) fail("--trace requires --procs");
    workload::SwfReadStats stats;
    trace = workload::readSwfFile(opt.traceFile, opt.traceFile, opt.procs,
                                  &stats);
    std::cerr << "read " << stats.jobsAccepted << " jobs ("
              << stats.droppedNonPositiveRuntime +
                     stats.droppedNonPositiveProcs + stats.droppedTooWide
              << " dropped, " << stats.estimatesClamped
              << " estimates clamped)\n";
  } else {
    workload::SyntheticConfig cfg;
    if (opt.preset == "ctc") cfg = workload::ctcConfig(opt.jobs, opt.seed);
    else if (opt.preset == "sdsc")
      cfg = workload::sdscConfig(opt.jobs, opt.seed);
    else if (opt.preset == "kth")
      cfg = workload::kthConfig(opt.jobs, opt.seed);
    else fail("unknown preset: " + opt.preset);
    if (opt.load) cfg.offeredLoad = *opt.load;
    trace = workload::generateTrace(cfg);
  }

  if (opt.estimates == "modal") {
    workload::EstimateModelConfig est;
    est.kind = workload::EstimateModelKind::Modal;
    est.seed = opt.seed + 1;
    applyEstimates(trace, est);
  } else if (opt.estimates == "uniform") {
    workload::EstimateModelConfig est;
    est.kind = workload::EstimateModelKind::UniformFactor;
    est.seed = opt.seed + 1;
    applyEstimates(trace, est);
  } else if (opt.estimates != "accurate") {
    fail("unknown estimate model: " + opt.estimates);
  }

  if (opt.loadFactor != 1.0)
    trace = workload::scaleLoad(trace, opt.loadFactor);
  return trace;
}

core::PolicySpec buildPolicy(const CliOptions& opt, core::Runner& runner,
                             const workload::Trace& trace) {
  core::PolicySpec spec;
  if (opt.policy == "fcfs") {
    spec.kind = core::PolicyKind::Fcfs;
  } else if (opt.policy == "conservative") {
    spec.kind = core::PolicyKind::Conservative;
  } else if (opt.policy == "easy") {
    spec.kind = core::PolicyKind::Easy;
  } else if (opt.policy == "sjf") {
    spec.kind = core::PolicyKind::Easy;
    spec.easy.order = sched::QueueOrder::ShortestFirst;
  } else if (opt.policy == "ss") {
    spec.kind = core::PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = opt.sf;
  } else if (opt.policy == "tss") {
    spec.kind = core::PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = opt.sf;
    std::cerr << "calibrating TSS limits from an NS run...\n";
    spec.ss.tssLimits = core::bootstrapTssLimits(runner, trace);
  } else if (opt.policy == "tss-online") {
    spec.kind = core::PolicyKind::SelectiveSuspension;
    spec.ss.suspensionFactor = opt.sf;
    spec.ss.tssOnlineMultiplier = 1.5;
  } else if (opt.policy == "is") {
    spec.kind = core::PolicyKind::ImmediateService;
  } else if (opt.policy == "gang") {
    spec.kind = core::PolicyKind::Gang;
    spec.gang.maxSlots = opt.gangSlots;
    spec.gang.slotQuantum = opt.gangQuantum;
  } else if (opt.policy == "depth") {
    spec.kind = core::PolicyKind::DepthBackfill;
    spec.depth.depth = opt.depth;
  } else {
    fail("unknown policy: " + opt.policy);
  }
  return spec;
}

void printTable(const Table& table, bool csv) {
  if (csv) table.printCsv(std::cout);
  else table.printAscii(std::cout);
}

void printRunGrids(const metrics::RunStats& stats, const CliOptions& opt) {
  const auto cat = metrics::categorize16(stats.jobs);
  std::cout << "\nAverage bounded slowdown by category:\n";
  printTable(metrics::categoryGrid16(cat, metrics::Metric::AvgSlowdown),
             opt.csv);
  std::cout << "\nAverage turnaround time (s) by category:\n";
  printTable(metrics::categoryGrid16(cat, metrics::Metric::AvgTurnaround, 0),
             opt.csv);
  if (opt.worst) {
    std::cout << "\np95 slowdown by category:\n";
    printTable(metrics::categoryGrid16(cat, metrics::Metric::P95Slowdown),
               opt.csv);
    std::cout << "\nWorst-case slowdown by category:\n";
    printTable(metrics::categoryGrid16(cat, metrics::Metric::WorstSlowdown),
               opt.csv);
    std::cout << "\nWorst-case turnaround time (s) by category:\n";
    printTable(
        metrics::categoryGrid16(cat, metrics::Metric::WorstTurnaround, 0),
        opt.csv);
  }
}

int runCompare(const CliOptions& opt, core::Runner& runner,
               const workload::Trace& trace,
               const core::SimulationOptions& options) {
  std::vector<core::PolicySpec> specs =
      opt.policy == "tss"
          ? core::tssSchemeSet(core::bootstrapTssLimits(runner, trace, 1.5,
                                                        options))
          : core::ssSchemeSet();

  const auto shared = core::borrowTrace(trace);
  std::vector<core::RunRequest> batch;
  for (const core::PolicySpec& spec : specs) {
    core::RunRequest request;
    request.trace = shared;
    request.spec = spec;
    request.options = options;
    request.seed = opt.seed;
    batch.push_back(std::move(request));
  }
  if (!opt.json)
    runner.onRunComplete([](const core::RunResult& r) {
      std::cerr << "finished " << r.label << " ("
                << formatFixed(r.wallSeconds, 2) << "s)\n";
    });
  const std::vector<core::RunResult> results =
      runner.runAll(std::move(batch));

  if (opt.json) {
    metrics::JsonOptions jsonOptions;
    jsonOptions.includeJobs = !opt.summaryOnly;
    core::writeRunResultsJson(std::cout, results, jsonOptions);
    std::cout << "\n";
    return 0;
  }

  std::vector<metrics::RunStats> runs;
  runs.reserve(results.size());
  for (const core::RunResult& r : results) runs.push_back(r.stats);
  core::printRunSummaries(std::cout, runs);
  if (opt.summaryOnly) return 0;
  core::printFigurePanels(std::cout, "average bounded slowdown by category",
                          runs, metrics::Metric::AvgSlowdown);
  core::printFigurePanels(std::cout, "average turnaround time by category",
                          runs, metrics::Metric::AvgTurnaround);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  core::CliConfig cli = makeCli(opt);
  try {
    if (cli.parse(argc, argv).helpRequested) {
      cli.printUsage(std::cout);
      return 0;
    }
  } catch (const sps::InputError& e) {
    fail(e.what());
  }

  try {
    core::Runner runner({.threads = opt.compare ? opt.threads : 1});
    const workload::Trace trace = buildWorkload(opt);

    std::optional<sched::DiskSwapOverhead> overhead;
    core::SimulationOptions options;
    if (opt.overhead) {
      overhead.emplace(trace, 2.0);
      options.overhead = &*overhead;
    }

    if (opt.compare) return runCompare(opt, runner, trace, options);

    const core::PolicySpec spec = buildPolicy(opt, runner, trace);
    core::RunRequest request;
    request.trace = core::borrowTrace(trace);
    request.spec = spec;
    request.options = options;
    request.seed = opt.seed;
    const core::RunResult result = runner.runOne(request);

    if (opt.json) {
      metrics::JsonOptions jsonOptions;
      jsonOptions.includeJobs = !opt.summaryOnly;
      core::writeRunResultsJson(std::cout, {result}, jsonOptions);
      std::cout << "\n";
      return 0;
    }

    const metrics::RunStats& stats = result.stats;
    std::cout << metrics::summaryLine(stats) << "\n";
    if (opt.summaryOnly) return 0;

    std::cout << "\nWorkload (" << trace.name << ", "
              << trace.machineProcs << " processors):\n";
    printTable(workload::summaryStatsTable(workload::summarizeTrace(trace)),
               opt.csv);
    printRunGrids(stats, opt);
    return 0;
  } catch (const sps::InputError& e) {
    std::cerr << "sps_sim: input error: " << e.what() << "\n";
    return 1;
  } catch (const sps::InvariantError& e) {
    std::cerr << "sps_sim: internal error: " << e.what() << "\n";
    return 1;
  }
}
