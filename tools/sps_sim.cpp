// sps_sim — command-line driver for the scheduling simulator.
//
// Subcommands (run is the default, so flag-only invocations keep working):
//
//   sps_sim run --preset sdsc --policy ss --sf 2
//   sps_sim run --swf CTC-SP2-1996-3.1-cln.swf --procs 430 --policy tss
//   sps_sim run --preset ctc --jobs 500 --trace run.json   (-DSPS_TRACE=ON)
//   sps_sim compare --preset sdsc --threads 8 --json
//   sps_sim compare --set classic --preset kth
//   sps_sim sweep --preset ctc --factors 1.0,1.1,1.2,1.3
//   sps_sim replicate --preset sdsc --seeds 5
//   sps_sim fleet --shards 4 --router least-loaded --procs-per-shard 128
//
// Everything is deterministic in --seed (independent of --threads).
//
// NOTE: --trace now names the structured-trace OUTPUT file (obs layer); the
// SWF workload input moved to --swf.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/check_config.hpp"
#include "check/fleet_audit.hpp"
#include "core/cli_config.hpp"
#include "fed/federation.hpp"
#include "fed/router.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/progress.hpp"
#include "core/replicate.hpp"
#include "core/runner.hpp"
#include "core/scheduler_service.hpp"
#include "core/simulation.hpp"
#include "metrics/json.hpp"
#include "metrics/openmetrics.hpp"
#include "metrics/report.hpp"
#include "obs/trace.hpp"
#include "sched/overhead.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "workload/category.hpp"
#include "workload/estimate_model.hpp"
#include "workload/summary.hpp"
#include "workload/swf.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace {

using namespace sps;

struct CliOptions {
  // Workload
  std::string swfFile;
  std::uint32_t procs = 0;
  std::string preset = "sdsc";
  std::size_t jobs = 10000;
  std::uint64_t seed = 42;
  std::optional<double> load;
  double loadFactor = 1.0;
  std::string estimates = "accurate";
  // Scheduler
  std::string policy = "ss";
  double sf = 2.0;
  bool overhead = false;
  std::size_t gangSlots = 4;
  Time gangQuantum = 600;
  std::size_t depth = 2;
  // Batch execution
  std::string set = "paper";
  std::size_t threads = 0;
  std::string factors = "1.0,1.1,1.2,1.3";
  std::size_t seeds = 5;
  // Observability
  std::string traceFile;
  std::string traceFormat = "chrome";
  bool counters = false;
  bool verbose = false;
  bool check = false;  ///< arm the sps::check invariant oracle
  std::size_t checkStride = 16;
  bool timeline = false;  ///< sample sim-clock series into RunStats/trace
  Time timelineStride = 0;  ///< 0 = auto (horizon-scaled default stride)
  bool progress = false;  ///< live batch progress line on stderr
  // Federation (fleet)
  std::uint32_t shards = 4;
  std::string router = "hash";
  std::uint32_t procsPerShard = 0;  ///< 0 = preset machine size
  Time fleetDelay = 0;
  Time epochLength = 0;
  std::size_t jobsPerEpoch = 4096;
  // Output
  std::string metricsOut;  ///< OpenMetrics exposition file
  bool json = false;
  bool csv = false;
  bool worst = false;
  bool summaryOnly = false;
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "sps_sim: " << message << "\n(--help for usage)\n";
  std::exit(2);
}

void addWorkloadFlags(core::CliConfig& cli, CliOptions& opt) {
  cli.section("Workload (choose one)");
  cli.option("--swf", &opt.swfFile, "FILE",
             "Standard Workload Format log (requires --procs)");
  cli.option("--procs", &opt.procs, "N",
             "machine size: required with --swf; with a preset, re-targets "
             "the synthetic workload at an N-processor machine (width bands "
             "scale proportionally)");
  cli.option("--preset", &opt.preset, "ctc|sdsc|kth",
             "calibrated synthetic workload (default: sdsc)");
  cli.option("--jobs", &opt.jobs, "N", "synthetic job count (default: 10000)");
  cli.option("--seed", &opt.seed, "S", "RNG seed (default: 42)");
  cli.option("--load", &opt.load, "F",
             "offered-load override (default: preset)");
  cli.option("--load-factor", &opt.loadFactor, "F",
             "divide arrival times by F (Section VI)");
  cli.option("--estimates", &opt.estimates, "MODEL",
             "accurate | modal | uniform (Section V)");
}

void addObsFlags(core::CliConfig& cli, CliOptions& opt) {
  cli.section("Observability");
  cli.option("--trace", &opt.traceFile, "FILE",
             "write a structured event trace (needs a -DSPS_TRACE=ON build; "
             "open chrome format in Perfetto)");
  cli.option("--trace-format", &opt.traceFormat, "chrome|jsonl",
             "trace file format (default: chrome)");
  cli.flag("--counters", &opt.counters,
           "print the obs counter table after the run");
  cli.flag("--verbose", &opt.verbose, "log at Info level");
  cli.flag("--check", &opt.check,
           "arm the sps::check invariant oracle (capacity, conservation, "
           "guarantees, TSS bound, ledger audits); a violation aborts the "
           "run with an InvariantError");
  cli.option("--check-stride", &opt.checkStride, "N",
             "run the sampled audits every N events (default: 16)");
  cli.flag("--timeline", &opt.timeline,
           "sample sim-clock series (queue depth, utilization, backlog) "
           "into the metrics output; with --trace also emits Perfetto "
           "counter tracks");
  cli.option("--timeline-stride", &opt.timelineStride, "SEC",
             "sim-seconds between timeline samples (default: auto — 60 "
             "doubled until the trace horizon fits the sample cap)");
}

void addOutputFlags(core::CliConfig& cli, CliOptions& opt) {
  cli.section("Output");
  cli.flag("--json", &opt.json, "machine-readable RunResult JSON on stdout");
  cli.flag("--csv", &opt.csv, "CSV tables instead of aligned ASCII");
  cli.flag("--summary-only", &opt.summaryOnly, "one-line summary, no grids");
  cli.option("--metrics-out", &opt.metricsOut, "FILE",
             "write an OpenMetrics text exposition of the run(s)");
}

void addBatchFlags(core::CliConfig& cli, CliOptions& opt) {
  cli.section("Batch execution");
  cli.option("--set", &opt.set, "NAME",
             "scheme set: paper (SS 1.5/2/5 + NS + IS) | tss | classic "
             "(every scheduler) (default: paper)");
  cli.option("--threads", &opt.threads, "N",
             "worker threads (0 = all hardware threads)");
  cli.flag("--overhead", &opt.overhead,
           "2 MB/s disk-swap suspension cost (Section V-A)");
  cli.flag("--progress", &opt.progress,
           "live batch progress line on stderr (runs done, events/s, ETA)");
}

core::CliCommands makeCli(CliOptions& opt) {
  core::CliCommands cli(
      "sps_sim",
      "parallel job scheduling simulator\n(Kettimuthu et al., \"Selective "
      "Preemption Strategies for Parallel Job\nScheduling\", reproduced in "
      "C++20)");

  core::CliConfig& run = cli.command("run", "simulate one policy");
  addWorkloadFlags(run, opt);
  run.section("Scheduler");
  run.option("--policy", &opt.policy, "NAME",
             "fcfs | conservative | easy | sjf | ss | tss | tss-online | is | "
             "gang | depth (default: ss)");
  run.option("--sf", &opt.sf, "F",
             "suspension factor for ss/tss (default: 2)");
  run.option("--gang-slots", &opt.gangSlots, "N",
             "gang multiprogramming level (default: 4)");
  run.option("--gang-quantum", &opt.gangQuantum, "SEC",
             "gang time slice (default: 600)");
  run.option("--depth", &opt.depth, "K",
             "reservation depth for depth (default: 2)");
  run.flag("--overhead", &opt.overhead,
           "2 MB/s disk-swap suspension cost (Section V-A)");
  addObsFlags(run, opt);
  addOutputFlags(run, opt);
  run.section("Output");
  run.flag("--worst", &opt.worst, "also print worst-case grids");

  core::CliConfig& compare =
      cli.command("compare", "run a scheme set side by side");
  addWorkloadFlags(compare, opt);
  addBatchFlags(compare, opt);
  addObsFlags(compare, opt);
  addOutputFlags(compare, opt);

  core::CliConfig& sweep =
      cli.command("sweep", "scheme set across load factors (Section VI)");
  addWorkloadFlags(sweep, opt);
  addBatchFlags(sweep, opt);
  sweep.section("Sweep");
  sweep.option("--factors", &opt.factors, "F1,F2,...",
               "load factors (default: 1.0,1.1,1.2,1.3)");
  addObsFlags(sweep, opt);
  sweep.section("Output");
  sweep.flag("--csv", &opt.csv, "CSV tables instead of aligned ASCII");
  sweep.option("--metrics-out", &opt.metricsOut, "FILE",
               "write an OpenMetrics text exposition of every run");

  core::CliConfig& serve =
      cli.command("serve", "online scheduler service on stdin/stdout");
  serve.section("Machine");
  serve.option("--procs", &opt.procs, "N", "machine size (required)");
  serve.section("Scheduler");
  serve.option("--policy", &opt.policy, "NAME",
               "fcfs | conservative | easy | sjf | ss | tss-online | is | "
               "gang | depth (default: ss; tss needs offline calibration "
               "and cannot serve)");
  serve.option("--sf", &opt.sf, "F",
               "suspension factor for ss/tss-online (default: 2)");
  serve.option("--gang-slots", &opt.gangSlots, "N",
               "gang multiprogramming level (default: 4)");
  serve.option("--gang-quantum", &opt.gangQuantum, "SEC",
               "gang time slice (default: 600)");
  serve.option("--depth", &opt.depth, "K",
               "reservation depth for depth (default: 2)");
  addObsFlags(serve, opt);
  serve.section("Output");
  serve.option("--metrics-out", &opt.metricsOut, "FILE",
               "write an OpenMetrics text exposition after drain");

  core::CliConfig& fleet = cli.command(
      "fleet", "federated multi-cluster simulation (conservative epochs)");
  fleet.section("Fleet");
  fleet.option("--shards", &opt.shards, "N",
               "cluster count (default: 4)");
  fleet.option("--router", &opt.router, "hash|least-loaded",
               "job placement rule (default: hash — the home-shard rule)");
  fleet.option("--procs-per-shard", &opt.procsPerShard, "P",
               "processors per cluster (default: the preset's machine; "
               "width bands scale proportionally when overridden)");
  fleet.option("--delay", &opt.fleetDelay, "SEC",
               "cross-cluster forwarding delay: a job routed off its home "
               "shard arrives this late (default: 0)");
  fleet.option("--epoch", &opt.epochLength, "SEC",
               "fixed conservative-epoch length (default: 0 = size epochs "
               "by job count instead)");
  fleet.option("--jobs-per-epoch", &opt.jobsPerEpoch, "N",
               "auto-epoch batch size (default: 4096)");
  fleet.option("--threads", &opt.threads, "N",
               "shard worker threads (0 = all hardware threads; results "
               "are bit-identical for every value)");
  fleet.section("Workload (synthetic fleet)");
  fleet.option("--preset", &opt.preset, "ctc|sdsc|kth",
               "per-cluster calibrated workload family (default: sdsc)");
  fleet.option("--jobs", &opt.jobs, "N",
               "TOTAL fleet job count (default: 10000)");
  fleet.option("--seed", &opt.seed, "S", "RNG seed (default: 42)");
  fleet.option("--load", &opt.load, "F",
               "per-cluster offered load (default: preset)");
  fleet.section("Scheduler (every cluster runs its own instance)");
  fleet.option("--policy", &opt.policy, "NAME",
               "fcfs | conservative | easy | sjf | ss | tss | tss-online | "
               "is | gang | depth (default: ss)");
  fleet.option("--sf", &opt.sf, "F",
               "suspension factor for ss/tss (default: 2)");
  fleet.option("--depth", &opt.depth, "K",
               "reservation depth for depth (default: 2)");
  fleet.flag("--overhead", &opt.overhead,
             "2 MB/s disk-swap suspension cost on every shard");
  addObsFlags(fleet, opt);
  addOutputFlags(fleet, opt);

  core::CliConfig& replicate =
      cli.command("replicate", "scheme set over independently-seeded runs");
  addWorkloadFlags(replicate, opt);
  addBatchFlags(replicate, opt);
  replicate.section("Replication");
  replicate.option("--seeds", &opt.seeds, "N",
                   "replication count, seeded seed..seed+N-1 (default: 5)");
  addObsFlags(replicate, opt);
  replicate.section("Output");
  replicate.flag("--csv", &opt.csv, "CSV tables instead of aligned ASCII");

  cli.setDefault("run");
  return cli;
}

workload::Trace buildWorkload(const CliOptions& opt) {
  workload::Trace trace;
  if (!opt.swfFile.empty()) {
    if (opt.procs == 0) fail("--swf requires --procs");
    workload::SwfReadStats stats;
    trace =
        workload::readSwfFile(opt.swfFile, opt.swfFile, opt.procs, &stats);
    std::cerr << "read " << stats.jobsAccepted << " jobs ("
              << stats.droppedNonPositiveRuntime +
                     stats.droppedNonPositiveProcs + stats.droppedTooWide
              << " dropped, " << stats.estimatesClamped
              << " estimates clamped)\n";
  } else {
    workload::SyntheticConfig cfg;
    if (opt.preset == "ctc") cfg = workload::ctcConfig(opt.jobs, opt.seed);
    else if (opt.preset == "sdsc")
      cfg = workload::sdscConfig(opt.jobs, opt.seed);
    else if (opt.preset == "kth")
      cfg = workload::kthConfig(opt.jobs, opt.seed);
    else fail("unknown preset: " + opt.preset);
    if (opt.load) cfg.offeredLoad = *opt.load;
    if (opt.procs != 0 && opt.procs != cfg.machineProcs)
      cfg = workload::scaledToMachine(cfg, opt.procs);
    trace = workload::generateTrace(cfg);
  }

  if (opt.estimates == "modal") {
    workload::EstimateModelConfig est;
    est.kind = workload::EstimateModelKind::Modal;
    est.seed = opt.seed + 1;
    applyEstimates(trace, est);
  } else if (opt.estimates == "uniform") {
    workload::EstimateModelConfig est;
    est.kind = workload::EstimateModelKind::UniformFactor;
    est.seed = opt.seed + 1;
    applyEstimates(trace, est);
  } else if (opt.estimates != "accurate") {
    fail("unknown estimate model: " + opt.estimates);
  }

  if (opt.loadFactor != 1.0)
    trace = workload::scaleLoad(trace, opt.loadFactor);
  return trace;
}

/// Build the requested trace sink, or null when --trace is off. Exits with
/// guidance when the build has no tracing compiled in — silently writing an
/// empty file would look like a successful trace.
std::unique_ptr<obs::TraceSink> makeSink(const CliOptions& opt) {
  if (opt.traceFile.empty()) return nullptr;
  if (!obs::kTraceCompiledIn)
    fail("--trace needs the instrumented build: reconfigure with "
         "-DSPS_TRACE=ON (this binary compiled the tracing layer out)");
  if (opt.traceFormat == "chrome")
    return std::make_unique<obs::ChromeTraceSink>(opt.traceFile);
  if (opt.traceFormat == "jsonl")
    return std::make_unique<obs::JsonlSink>(opt.traceFile);
  fail("unknown --trace-format: " + opt.traceFormat);
}

core::PolicySpec buildPolicy(const CliOptions& opt, core::Runner& runner,
                             const workload::Trace& trace) {
  // The shared registry (sched::specFromToken) owns the name -> policy
  // mapping. Parameterized policies get a ":1" placeholder — their real
  // parameters ride dedicated CLI flags, not token suffixes, and doubles
  // must not round-trip through text — and the label reverts to the
  // policy's own name(), as before.
  const bool parameterized = opt.policy == "ss" || opt.policy == "tss" ||
                             opt.policy == "tss-online" ||
                             opt.policy == "depth";
  core::PolicySpec spec;
  try {
    spec =
        sched::specFromToken(parameterized ? opt.policy + ":1" : opt.policy);
  } catch (const std::invalid_argument&) {
    fail("unknown policy: " + opt.policy);
  }
  spec.label.clear();
  if (opt.policy == "ss" || opt.policy == "tss" ||
      opt.policy == "tss-online")
    spec.ss.suspensionFactor = opt.sf;
  if (opt.policy == "tss") {
    std::cerr << "calibrating TSS limits from an NS run...\n";
    spec.ss.tssLimits = core::bootstrapTssLimits(runner, trace);
  }
  if (opt.policy == "tss-online") spec.ss.tssOnlineMultiplier = 1.5;
  if (opt.policy == "depth") spec.depth.depth = opt.depth;
  if (opt.policy == "gang") {
    spec.gang.maxSlots = opt.gangSlots;
    spec.gang.slotQuantum = opt.gangQuantum;
  }
  return spec;
}

std::vector<core::PolicySpec> buildSchemeSet(
    const CliOptions& opt, core::Runner& runner,
    const workload::Trace& trace, const core::SimulationOptions& options) {
  if (opt.set == "paper") return core::ssSchemeSet();
  if (opt.set == "classic") return core::classicSchemeSet();
  if (opt.set == "tss")
    return core::tssSchemeSet(
        core::bootstrapTssLimits(runner, trace, 1.5, options));
  fail("unknown scheme set: " + opt.set);
}

void printTable(const Table& table, bool csv) {
  if (csv) table.printCsv(std::cout);
  else table.printAscii(std::cout);
}

/// Progress wiring for the batch commands: a ProgressBoard attached to the
/// runner plus a stderr reporter, built only under --progress. finish() must
/// run before any result tables print so the final frame's newline lands
/// ahead of them.
struct ProgressScope {
  std::optional<core::ProgressBoard> board;
  std::optional<core::ProgressReporter> reporter;

  void start(core::Runner& runner, bool enabled) {
    if (!enabled) return;
    board.emplace();
    runner.attachProgress(&*board);
    reporter.emplace(*board, std::cerr);
  }
  void finish(core::Runner& runner) {
    if (!board) return;
    reporter.reset();  // paints the final frame and ends the line
    runner.attachProgress(nullptr);
  }
};

void writeMetricsFile(const std::string& path,
                      const std::vector<core::RunResult>& results) {
  std::ofstream os(path);
  if (!os) fail("cannot open --metrics-out file: " + path);
  core::writeRunResultsOpenMetrics(os, results);
  if (!os) fail("failed writing --metrics-out file: " + path);
  std::cerr << "wrote OpenMetrics exposition to " << path << "\n";
}

void printCountersTable(const metrics::RunStats& stats, bool csv) {
  std::cout << "\nObservability counters (" << stats.policyName << "):\n";
  Table t({"counter", "value"});
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto c = static_cast<obs::Counter>(i);
    if (stats.counters.value(c) != 0)
      t.row().cell(obs::counterName(c)).cell(
          static_cast<std::int64_t>(stats.counters.value(c)));
  }
  const auto& byCategory = stats.counters.suspensionsByCategory();
  for (std::size_t i = 0; i < byCategory.size(); ++i)
    if (byCategory[i] != 0)
      t.row()
          .cell("sim.suspensions[" + workload::category16Name(i) + "]")
          .cell(static_cast<std::int64_t>(byCategory[i]));
  printTable(t, csv);
}

void printRunGrids(const metrics::RunStats& stats, const CliOptions& opt) {
  const auto cat = metrics::categorize16(stats.jobs);
  std::cout << "\nAverage bounded slowdown by category:\n";
  printTable(metrics::categoryGrid16(cat, metrics::Metric::AvgSlowdown),
             opt.csv);
  std::cout << "\nAverage turnaround time (s) by category:\n";
  printTable(metrics::categoryGrid16(cat, metrics::Metric::AvgTurnaround, 0),
             opt.csv);
  if (opt.worst) {
    std::cout << "\np95 slowdown by category:\n";
    printTable(metrics::categoryGrid16(cat, metrics::Metric::P95Slowdown),
               opt.csv);
    std::cout << "\nWorst-case slowdown by category:\n";
    printTable(metrics::categoryGrid16(cat, metrics::Metric::WorstSlowdown),
               opt.csv);
    std::cout << "\nWorst-case turnaround time (s) by category:\n";
    printTable(
        metrics::categoryGrid16(cat, metrics::Metric::WorstTurnaround, 0),
        opt.csv);
  }
}

int runSingle(const CliOptions& opt, core::Runner& runner,
              const workload::Trace& trace,
              const core::SimulationOptions& options) {
  const core::PolicySpec spec = buildPolicy(opt, runner, trace);
  core::RunRequest request;
  request.trace = core::borrowTrace(trace);
  request.spec = spec;
  request.options = options;
  request.seed = opt.seed;
  const core::RunResult result = runner.runOne(request);

  if (!opt.metricsOut.empty()) writeMetricsFile(opt.metricsOut, {result});

  if (opt.json) {
    metrics::JsonOptions jsonOptions;
    jsonOptions.includeJobs = !opt.summaryOnly;
    core::writeRunResultsJson(std::cout, {result}, jsonOptions);
    std::cout << "\n";
    return 0;
  }

  const metrics::RunStats& stats = result.stats;
  std::cout << metrics::summaryLine(stats) << "\n";
  if (opt.counters) printCountersTable(stats, opt.csv);
  if (opt.summaryOnly) return 0;

  std::cout << "\nWorkload (" << trace.name << ", " << trace.machineProcs
            << " processors):\n";
  printTable(workload::summaryStatsTable(workload::summarizeTrace(trace)),
             opt.csv);
  printRunGrids(stats, opt);
  return 0;
}

int runCompare(const CliOptions& opt, core::Runner& runner,
               const workload::Trace& trace,
               const core::SimulationOptions& options) {
  const std::vector<core::PolicySpec> specs =
      buildSchemeSet(opt, runner, trace, options);

  const auto shared = core::borrowTrace(trace);
  std::vector<core::RunRequest> batch;
  for (const core::PolicySpec& spec : specs) {
    core::RunRequest request;
    request.trace = shared;
    request.spec = spec;
    request.options = options;
    request.seed = opt.seed;
    batch.push_back(std::move(request));
  }
  // The per-run "finished" lines and the --progress repaint line would
  // shred each other; progress replaces them.
  if (!opt.json && !opt.progress)
    runner.onRunComplete([](const core::RunResult& r) {
      std::cerr << "finished " << r.label << " ("
                << formatFixed(r.wallSeconds, 2) << "s)\n";
    });
  ProgressScope progress;
  progress.start(runner, opt.progress);
  const std::vector<core::RunResult> results = runner.runAll(std::move(batch));
  progress.finish(runner);

  if (!opt.metricsOut.empty()) writeMetricsFile(opt.metricsOut, results);

  if (opt.json) {
    metrics::JsonOptions jsonOptions;
    jsonOptions.includeJobs = !opt.summaryOnly;
    core::writeRunResultsJson(std::cout, results, jsonOptions);
    std::cout << "\n";
    return 0;
  }

  std::vector<metrics::RunStats> runs;
  runs.reserve(results.size());
  for (const core::RunResult& r : results) runs.push_back(r.stats);
  core::printRunSummaries(std::cout, runs);
  if (opt.counters)
    for (const metrics::RunStats& stats : runs)
      printCountersTable(stats, opt.csv);
  if (opt.summaryOnly) return 0;
  core::printFigurePanels(std::cout, "average bounded slowdown by category",
                          runs, metrics::Metric::AvgSlowdown);
  core::printFigurePanels(std::cout, "average turnaround time by category",
                          runs, metrics::Metric::AvgTurnaround);
  return 0;
}

std::vector<double> parseFactors(const std::string& text) {
  std::vector<double> factors;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!piece.empty())
      factors.push_back(
          core::detail::parseCliValue<double>("--factors", piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (factors.empty()) fail("--factors needs at least one load factor");
  return factors;
}

int runSweep(const CliOptions& opt, core::Runner& runner,
             const workload::Trace& trace,
             const core::SimulationOptions& options) {
  const std::vector<double> factors = parseFactors(opt.factors);
  const std::vector<core::PolicySpec> specs =
      buildSchemeSet(opt, runner, trace, options);
  ProgressScope progress;
  progress.start(runner, opt.progress);
  const std::vector<core::LoadPoint> points =
      core::loadSweep(runner, trace, specs, factors,
                      /*calibrateTssFromBase=*/true, options);
  progress.finish(runner);

  if (!opt.metricsOut.empty()) {
    std::ofstream os(opt.metricsOut);
    if (!os) fail("cannot open --metrics-out file: " + opt.metricsOut);
    std::vector<metrics::OpenMetricsEntry> entries;
    std::size_t run = 0;
    for (const core::LoadPoint& point : points)
      for (const metrics::RunStats& stats : point.runs) {
        metrics::OpenMetricsEntry entry;
        entry.stats = &stats;
        entry.run = run++;
        entry.label =
            stats.policyName + " @x" + formatFixed(point.loadFactor, 2);
        entry.seed = opt.seed;
        entries.push_back(std::move(entry));
      }
    metrics::writeOpenMetrics(os, entries);
    if (!os) fail("failed writing --metrics-out file: " + opt.metricsOut);
    std::cerr << "wrote OpenMetrics exposition to " << opt.metricsOut << "\n";
  }

  for (const core::LoadPoint& point : points) {
    std::cout << "\n=== load factor " << formatFixed(point.loadFactor, 2)
              << " ===\n";
    core::printRunSummaries(std::cout, point.runs);
  }
  return 0;
}

int runReplicate(const CliOptions& opt, core::Runner& runner,
                 const core::SimulationOptions& options) {
  if (!opt.swfFile.empty())
    fail("replicate reseeds the synthetic generator per run; it cannot use "
         "a fixed --swf log");
  if (opt.seeds == 0) fail("--seeds must be at least 1");
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < opt.seeds; ++i) seeds.push_back(opt.seed + i);

  CliOptions traceOpt = opt;  // buildWorkload with a per-replication seed
  auto makeTrace = [&traceOpt](std::uint64_t seed) {
    CliOptions o = traceOpt;
    o.seed = seed;
    return buildWorkload(o);
  };
  // TSS limits recalibrate per seed inside replicate(); the engaged value
  // only marks the spec as TSS.
  core::Runner calibration({.threads = 1});
  const workload::Trace base = makeTrace(opt.seed);
  const std::vector<core::PolicySpec> specs =
      buildSchemeSet(opt, calibration, base, options);

  ProgressScope progress;
  progress.start(runner, opt.progress);
  const std::vector<core::ReplicationResult> results =
      core::replicate(runner, makeTrace, seeds, specs, options);
  progress.finish(runner);
  std::cout << "Replication over " << seeds.size() << " seeds ("
            << base.name << " family):\n";
  printTable(core::replicationTable(results), opt.csv);
  return 0;
}

int runServe(const CliOptions& opt, const core::SimulationOptions& options) {
  if (opt.procs == 0) fail("serve requires --procs (no trace to infer from)");
  if (opt.policy == "tss")
    fail("tss calibrates its protection limits from an offline NS run over "
         "the whole workload; an online service cannot — use tss-online");
  const bool parameterized = opt.policy == "ss" ||
                             opt.policy == "tss-online" ||
                             opt.policy == "depth";
  core::ServiceConfig cfg;
  cfg.traceName = "serve";
  cfg.machineProcs = opt.procs;
  try {
    cfg.spec =
        sched::specFromToken(parameterized ? opt.policy + ":1" : opt.policy);
  } catch (const std::invalid_argument&) {
    fail("unknown policy: " + opt.policy);
  }
  cfg.spec.label.clear();
  if (opt.policy == "ss" || opt.policy == "tss-online")
    cfg.spec.ss.suspensionFactor = opt.sf;
  if (opt.policy == "tss-online") cfg.spec.ss.tssOnlineMultiplier = 1.5;
  if (opt.policy == "depth") cfg.spec.depth.depth = opt.depth;
  if (opt.policy == "gang") {
    cfg.spec.gang.maxSlots = opt.gangSlots;
    cfg.spec.gang.slotQuantum = opt.gangQuantum;
  }
  cfg.options = options;

  core::SchedulerService service(std::move(cfg));
  const metrics::RunStats stats = service.serve(std::cin, std::cout);
  if (!opt.metricsOut.empty()) {
    std::ofstream os(opt.metricsOut);
    if (!os) fail("cannot open --metrics-out file: " + opt.metricsOut);
    os << metrics::openMetrics(stats);
    if (!os) fail("failed writing --metrics-out file: " + opt.metricsOut);
    std::cerr << "wrote OpenMetrics exposition to " << opt.metricsOut << "\n";
  }
  std::cerr << metrics::summaryLine(stats) << "\n";
  return 0;
}

int runFleet(const CliOptions& opt, core::Runner& runner,
             const core::SimulationOptions& options) {
  if (!opt.swfFile.empty())
    fail("fleet generates its synthetic workload; --swf is not supported");
  if (opt.shards == 0) fail("--shards must be at least 1");

  workload::SyntheticConfig cfg;
  if (opt.preset == "ctc") cfg = workload::ctcConfig(opt.jobs, opt.seed);
  else if (opt.preset == "sdsc")
    cfg = workload::sdscConfig(opt.jobs, opt.seed);
  else if (opt.preset == "kth") cfg = workload::kthConfig(opt.jobs, opt.seed);
  else fail("unknown preset: " + opt.preset);
  if (opt.load) cfg.offeredLoad = *opt.load;
  if (opt.procsPerShard != 0 && opt.procsPerShard != cfg.machineProcs)
    cfg = workload::scaledToMachine(cfg, opt.procsPerShard);
  const workload::Trace fleetTrace =
      workload::generateFleetTrace(cfg, opt.shards);

  // Every shard runs its own instance of one spec; tss calibrates from the
  // fleet trace (the same limits a single-cluster replay would resolve).
  const core::PolicySpec spec = buildPolicy(opt, runner, fleetTrace);

  std::unique_ptr<fed::JobRouter> router;
  try {
    router = fed::routerFromToken(opt.router);
  } catch (const sps::InputError& e) {
    fail(e.what());
  }

  fed::FederationConfig config;
  config.shards = opt.shards;
  config.routingDelay = opt.fleetDelay;
  config.epochLength = opt.epochLength;
  config.jobsPerEpoch = opt.jobsPerEpoch;
  config.threads = opt.threads;
  config.diskSwapOverhead = opt.overhead;
  config.check = options.check;
  config.timeline = options.timeline;

  fed::Federation federation(fleetTrace, spec, *router, config);
  const fed::FleetStats fleet = federation.run();
  if (opt.check)
    check::auditFleetConservation(fleetTrace, fleet.shards,
                                  fleet.assignments, fleet.effectiveSubmits,
                                  opt.shards, opt.fleetDelay);

  if (!opt.metricsOut.empty()) {
    std::ofstream os(opt.metricsOut);
    if (!os) fail("cannot open --metrics-out file: " + opt.metricsOut);
    std::vector<metrics::OpenMetricsEntry> entries;
    for (std::size_t s = 0; s < fleet.shards.size(); ++s) {
      metrics::OpenMetricsEntry entry;
      entry.stats = &fleet.shards[s];
      entry.run = s;
      entry.label = fleet.shards[s].policyName + " shard" + std::to_string(s);
      entry.seed = opt.seed;
      entries.push_back(std::move(entry));
    }
    metrics::writeOpenMetrics(os, entries);
    if (!os) fail("failed writing --metrics-out file: " + opt.metricsOut);
    std::cerr << "wrote OpenMetrics exposition to " << opt.metricsOut << "\n";
  }

  std::cout << "fleet: " << opt.shards << " x " << fleetTrace.machineProcs
            << " procs, router=" << router->name()
            << ", delay=" << opt.fleetDelay << "s, epochs=" << fleet.epochs
            << ", forwarded=" << fleet.forwarded << "/"
            << fleetTrace.jobs.size() << "\n";
  if (!opt.summaryOnly)
    for (const metrics::RunStats& stats : fleet.shards)
      std::cout << "  " << metrics::summaryLine(stats) << "\n";
  std::cout << "fleet totals: jobs=" << fleet.jobCount()
            << " events=" << fleet.eventsProcessed()
            << " suspensions=" << fleet.suspensions()
            << " util=" << formatFixed(fleet.utilization(), 4)
            << " meanBoundedSlowdown="
            << formatFixed(fleet.meanBoundedSlowdown(), 2)
            << " span=" << fleet.span() << "s\n";
  if (opt.counters) {
    metrics::RunStats merged;
    merged.policyName = "fleet";
    merged.counters = fleet.counters();
    printCountersTable(merged, opt.csv);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  core::CliCommands cli = makeCli(opt);
  core::CliCommands::Outcome outcome;
  try {
    outcome = cli.parse(argc, argv);
  } catch (const sps::InputError& e) {
    fail(e.what());
  }
  if (outcome.helpRequested) {
    cli.printUsage(std::cout, outcome.command);
    return 0;
  }
  if (opt.verbose) setLogLevel(LogLevel::Info);

  const std::string& command = outcome.command;

  try {
    const bool batch = command != "run";
    core::Runner runner({.threads = batch ? opt.threads : 1});

    std::unique_ptr<obs::TraceSink> sink = makeSink(opt);
    core::SimulationOptions options;
    options.traceSink = sink.get();
    if (opt.check)
      options.check = check::CheckConfig::all(
          static_cast<std::uint32_t>(opt.checkStride));
    options.timeline.enabled = opt.timeline;
    options.timeline.stride = opt.timelineStride;
    std::optional<sched::DiskSwapOverhead> overhead;

    if (command == "replicate") {
      // The workload is rebuilt per seed; overhead models are per-trace and
      // would dangle, so replication runs with free preemption (as the
      // paper's replication-style comparisons do).
      if (opt.overhead)
        fail("replicate does not support --overhead (per-seed traces)");
      return runReplicate(opt, runner, options);
    }
    // serve builds no workload: jobs arrive over the protocol.
    if (command == "serve") return runServe(opt, options);
    // fleet builds its own fleet-scale workload and runs the federation.
    if (command == "fleet") return runFleet(opt, runner, options);

    const workload::Trace trace = buildWorkload(opt);
    if (opt.overhead) {
      overhead.emplace(trace, 2.0);
      options.sim.overhead = &*overhead;
    }

    if (command == "compare") return runCompare(opt, runner, trace, options);
    if (command == "sweep") return runSweep(opt, runner, trace, options);
    return runSingle(opt, runner, trace, options);
  } catch (const sps::InputError& e) {
    std::cerr << "sps_sim: input error: " << e.what() << "\n";
    return 1;
  } catch (const sps::InvariantError& e) {
    std::cerr << "sps_sim: internal error: " << e.what() << "\n";
    return 1;
  }
}
