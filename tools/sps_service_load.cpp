// sps_service_load — sustained-load harness for core::SchedulerService.
//
// Generates a paper-calibrated synthetic workload (the SDSC preset, scaled
// to the requested machine), renders it as protocol lines, and pumps them
// through SchedulerService::processLine one line at a time, verifying every
// reply. Deterministic sprinkles of `query`, `stats`, and `cancel` lines
// ride along to exercise the read verbs and the cancel edges under load;
// policy or lifecycle cancel refusals are counted, not fatal (a cancel that
// races job completion is expected traffic, not a bug). The run ends with
// an explicit `drain`, the final OpenMetrics exposition is validated with
// the strict checker, and ingest throughput is printed.
//
//   sps_service_load --jobs 50000                    # ctest service-smoke
//   sps_service_load --jobs 1000000 --stride 64      # the acceptance pump
//
// The protocol script is fully materialized before the clock starts, so the
// reported rates price the service (parse + bounded-lookahead advance +
// ingest), not the workload generator.
//
// Exit status: 0 on success, 1 on any reply or validation failure, 2 on
// usage errors.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "check/check_config.hpp"
#include "core/cli_config.hpp"
#include "core/scheduler_service.hpp"
#include "metrics/openmetrics.hpp"
#include "metrics/report.hpp"
#include "sched/policy_factory.hpp"
#include "util/check.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace sps;

struct LoadOptions {
  std::size_t jobs = 50000;
  std::uint32_t procs = 0;     ///< 0 = the preset's machine (SDSC, 128)
  std::string policy = "easy";
  std::uint64_t seed = 42;
  std::uint32_t stride = 0;    ///< 0 = oracle off; N = CheckConfig::all(N)
  std::string metricsOut;
  bool quiet = false;
};

core::CliConfig makeCli(LoadOptions& opt) {
  core::CliConfig cli(
      "sps_service_load",
      "sustained-load harness for the scheduler service: pump a synthetic\n"
      "workload through the line protocol, verify every reply, validate the\n"
      "final OpenMetrics exposition, and report ingest throughput");
  cli.section("Load");
  cli.option("--jobs", &opt.jobs, "N",
             "synthetic submissions to pump (default: 50000)");
  cli.option("--procs", &opt.procs, "P",
             "machine size; scales the SDSC preset's width bands "
             "proportionally (default: the preset's 128)");
  cli.option("--policy", &opt.policy, "TOKEN",
             "policy token, e.g. easy, ss:2, tss-online:2 (default: easy; "
             "static tss needs offline calibration and cannot serve)");
  cli.option("--seed", &opt.seed, "S",
             "workload generator seed (default: 42)");
  cli.option("--stride", &opt.stride, "N",
             "arm the full invariant oracle at audit stride N; 0 = off "
             "(default: 0 — the throughput configuration)");
  cli.section("Output");
  cli.option("--metrics-out", &opt.metricsOut, "FILE",
             "write the final OpenMetrics exposition to FILE");
  cli.flag("--quiet", &opt.quiet, "only the final throughput line");
  return cli;
}

int fail(const std::string& message) {
  std::cerr << "sps_service_load: " << message << "\n";
  return 1;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Render the whole run as one protocol script. Submissions appear in trace
/// (submit-time) order; read verbs and cancels are interleaved on fixed
/// strides so every script for a given workload is identical run to run.
std::string buildScript(const workload::Trace& trace) {
  std::ostringstream os;
  os << "# sps_service_load script: " << trace.jobs.size() << " jobs on "
     << trace.machineProcs << " procs\n";
  for (const workload::Job& job : trace.jobs) {
    os << "submit " << job.submit << ' ' << job.procs << ' ' << job.runtime
       << ' ' << job.estimate << ' ' << job.memoryMb << '\n';
    const std::size_t i = static_cast<std::size_t>(job.id);
    if (i % 211 == 105) os << "query " << i << '\n';
    // Alternate between the job just submitted (often still queued -> the
    // success path) and an old id (long finished -> the refusal path).
    if (i % 1009 == 503) os << "cancel " << (i % 2 ? i : i / 2) << '\n';
    if (i % 4096 == 1000) os << "stats\n";
  }
  os << "drain\n";
  return os.str();
}

struct PumpTally {
  std::uint64_t submits = 0;
  std::uint64_t queries = 0;
  std::uint64_t statsCalls = 0;
  std::uint64_t cancelsOk = 0;
  std::uint64_t cancelsRefused = 0;
  bool drained = false;
};

/// Feed the script line by line and verify each reply shape. Returns false
/// (with a message on stderr) on the first protocol violation.
bool pump(core::SchedulerService& service, std::string_view script,
          PumpTally& tally) {
  std::size_t pos = 0;
  std::uint64_t lineNo = 0;
  while (pos < script.size()) {
    const std::size_t eol = script.find('\n', pos);
    const std::string_view line = script.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? script.size() : eol + 1;
    ++lineNo;
    const std::string reply = service.processLine(line);
    if (startsWith(line, "#")) {
      if (!reply.empty()) return fail("comment line drew a reply"), false;
    } else if (startsWith(line, "submit ")) {
      // Streamed ids are dense and sequential, so the expected reply is
      // exact, not just well-formed.
      if (reply != "ok " + std::to_string(tally.submits))
        return fail("line " + std::to_string(lineNo) + ": expected 'ok " +
                    std::to_string(tally.submits) + "', got '" + reply + "'"),
               false;
      ++tally.submits;
    } else if (startsWith(line, "query ")) {
      if (!startsWith(reply, "ok job "))
        return fail("query reply: '" + reply + "'"), false;
      ++tally.queries;
    } else if (startsWith(line, "stats")) {
      if (!startsWith(reply, "ok now "))
        return fail("stats reply: '" + reply + "'"), false;
      ++tally.statsCalls;
    } else if (startsWith(line, "cancel ")) {
      if (startsWith(reply, "ok cancelled "))
        ++tally.cancelsOk;
      else if (startsWith(reply, "err cancel: "))
        ++tally.cancelsRefused;  // completed / policy refusal: expected
      else
        return fail("cancel reply: '" + reply + "'"), false;
    } else if (startsWith(line, "drain")) {
      if (!startsWith(reply, "ok drained "))
        return fail("drain reply: '" + reply + "'"), false;
      tally.drained = true;
    } else {
      return fail("unexpected script line: '" + std::string(line) + "'"),
             false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opt;
  core::CliConfig cli = makeCli(opt);
  try {
    if (cli.parse(argc, argv).helpRequested) {
      cli.printUsage(std::cout);
      return 0;
    }
  } catch (const sps::InputError& e) {
    std::cerr << "sps_service_load: " << e.what() << "\n";
    return 2;
  }
  if (opt.jobs == 0) {
    std::cerr << "sps_service_load: --jobs must be positive\n";
    return 2;
  }
  if (opt.policy == "tss") {
    std::cerr << "sps_service_load: tss calibrates offline and cannot "
                 "serve; use tss-online\n";
    return 2;
  }

  core::ServiceConfig cfg;
  try {
    cfg.spec = sched::specFromToken(opt.policy);
  } catch (const std::invalid_argument& e) {
    std::cerr << "sps_service_load: " << e.what() << "\n";
    return 2;
  }

  workload::SyntheticConfig synth = workload::sdscConfig(opt.jobs, opt.seed);
  if (opt.procs != 0 && opt.procs != synth.machineProcs)
    synth = workload::scaledToMachine(synth, opt.procs);
  synth.name = "service-load";
  const workload::Trace trace = workload::generateTrace(synth);

  cfg.traceName = trace.name;
  cfg.machineProcs = trace.machineProcs;
  if (opt.stride != 0) cfg.options.check = check::CheckConfig::all(opt.stride);

  const std::string script = buildScript(trace);
  if (!opt.quiet)
    std::cout << "pumping " << trace.jobs.size() << " submissions ("
              << script.size() / (1024 * 1024) << " MiB of protocol) through "
              << opt.policy << " on " << trace.machineProcs << " procs"
              << (opt.stride ? ", oracle stride " + std::to_string(opt.stride)
                             : std::string())
              << "\n";

  core::SchedulerService service(std::move(cfg));
  PumpTally tally;
  const auto t0 = std::chrono::steady_clock::now();
  if (!pump(service, script, tally)) return 1;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!tally.drained) return fail("script ended without a drain reply");
  if (tally.submits != trace.jobs.size())
    return fail("submitted " + std::to_string(tally.submits) + " of " +
                std::to_string(trace.jobs.size()));
  const metrics::RunStats stats = service.finish();

  const std::string exposition = metrics::openMetrics(stats);
  std::string error;
  if (!metrics::validateOpenMetrics(exposition, &error))
    return fail("OpenMetrics validation: " + error);
  if (!opt.metricsOut.empty()) {
    std::ofstream os(opt.metricsOut);
    if (!os) return fail("cannot open --metrics-out file: " + opt.metricsOut);
    os << exposition;
    if (!os) return fail("failed writing " + opt.metricsOut);
  }

  if (!opt.quiet) {
    std::cout << "  " << metrics::summaryLine(stats) << "\n";
    std::cout << "  queries " << tally.queries << ", stats "
              << tally.statsCalls << ", cancels " << tally.cancelsOk
              << " ok / " << tally.cancelsRefused << " refused\n";
  }
  std::cout << "sps_service_load: " << tally.submits << " submissions in "
            << wall << " s ("
            << static_cast<std::uint64_t>(
                   static_cast<double>(tally.submits) / wall)
            << " submissions/s, "
            << static_cast<std::uint64_t>(
                   static_cast<double>(stats.eventsProcessed) / wall)
            << " events/s)\n";
  return 0;
}
