// sps_fuzz — differential scheduling fuzzer (sps::check::DiffHarness).
//
// Each iteration draws one adversarial workload (makeFuzzTrace corner
// shapes) and runs it through every fuzz policy token under BOTH kernel
// modes with the invariant oracle armed at stride 1. Any schedule
// divergence or invariant firing is a bug by construction: the case is
// shrunk with the greedy job-removal minimizer and written as a
// self-contained .repro file that tests/test_fuzz_corpus.cpp replays.
//
// Three lanes per case: the kernel diff (Incremental vs Rebuild), the
// ingest-boundary diff (batch vs seeded streamed replay), and the
// federation diff (the case partitioned across a seeded shard count and
// router must equal its per-shard single-cluster replays bit for bit —
// fed::diffFederated). Repros carry the federated parameters (shards /
// router / delay lines) and replay through the right lane automatically.
//
//   sps_fuzz --runs 200 --seed 1            # the acceptance sweep
//   sps_fuzz --runs 50 --seed 1             # ctest fuzz-smoke
//   sps_fuzz --policy ss:2 --runs 500       # hammer one policy family
//   sps_fuzz --seed 7 --policy tss:2 --dump corpus/tss-7.repro
//
// Exit status: 0 when every diff is clean, 1 on any failure (repros are
// still written), 2 on usage errors.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/check_config.hpp"
#include "check/diff_harness.hpp"
#include "core/cli_config.hpp"
#include "fed/fed_diff.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace sps;

struct FuzzOptions {
  std::size_t runs = 200;
  std::uint64_t seed = 1;
  std::string policy;         ///< empty = every fuzzPolicyTokens() entry
  std::string outDir = ".";   ///< where failure repros land
  std::uint32_t stride = 1;   ///< sampled-audit stride for the oracle
  std::size_t shrinkRuns = 400;
  std::string dumpFile;       ///< write the case repro and exit (corpus)
  std::string replayFile;     ///< replay one .repro and exit
  bool quiet = false;
};

core::CliConfig makeCli(FuzzOptions& opt) {
  core::CliConfig cli(
      "sps_fuzz",
      "differential scheduling fuzzer: every policy under both kernel "
      "modes\nwith the sps::check invariant oracle armed; divergences "
      "shrink to .repro files");
  cli.section("Fuzzing");
  cli.option("--runs", &opt.runs, "N",
             "fuzz iterations; each runs every selected policy under both "
             "kernel modes (default: 200)");
  cli.option("--seed", &opt.seed, "S",
             "base seed; case seeds derive deterministically (default: 1)");
  cli.option("--policy", &opt.policy, "TOKEN",
             "fuzz only this policy token, e.g. ss:2, depth:inf, "
             "tss-online:2 (default: all)");
  cli.option("--stride", &opt.stride, "N",
             "sampled-audit stride for the armed oracle (default: 1)");
  cli.option("--max-shrink-runs", &opt.shrinkRuns, "N",
             "diff-evaluation budget for the minimizer (default: 400)");
  cli.section("Output");
  cli.option("--out", &opt.outDir, "DIR",
             "directory for failure .repro files (default: .)");
  cli.option("--dump", &opt.dumpFile, "FILE",
             "write the first case's repro (from --seed/--policy) to FILE "
             "and exit; used to seed tests/corpus");
  cli.option("--replay", &opt.replayFile, "FILE",
             "replay one .repro file through the differential harness and "
             "exit (0 = clean, 1 = still failing)");
  cli.flag("--quiet", &opt.quiet, "no progress lines, only failures");
  return cli;
}

/// Policy tokens contain ':'; keep repro filenames shell-friendly.
std::string sanitize(std::string token) {
  for (char& c : token)
    if (c == ':' || c == '.') c = '-';
  return token;
}

/// Write a failing (already shrunk) case next to its diagnosis.
void emitRepro(const FuzzOptions& opt, const check::FuzzCase& c,
               std::uint64_t caseSeed, const check::DiffOutcome& outcome) {
  const std::string path = opt.outDir + "/fuzz-" + std::to_string(caseSeed) +
                           "-" + sanitize(c.policyToken) + ".repro";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "sps_fuzz: cannot write " << path << "\n";
    return;
  }
  check::writeRepro(os, c);
  std::cerr << "  repro: " << path << " (" << c.trace.jobs.size()
            << " jobs after shrink)\n";
  if (!outcome.violation.empty())
    std::cerr << "  violation: " << outcome.violation << "\n";
  if (!outcome.divergence.empty())
    std::cerr << "  divergence: " << outcome.divergence << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opt;
  core::CliConfig cli = makeCli(opt);
  try {
    if (cli.parse(argc, argv).helpRequested) {
      cli.printUsage(std::cout);
      return 0;
    }
  } catch (const sps::InputError& e) {
    std::cerr << "sps_fuzz: " << e.what() << "\n";
    return 2;
  }

  std::vector<std::string> tokens = check::fuzzPolicyTokens();
  if (!opt.policy.empty()) {
    try {
      (void)check::policyFromToken(opt.policy);  // eager validation
    } catch (const sps::InputError& e) {
      std::cerr << "sps_fuzz: " << e.what() << "\n";
      return 2;
    }
    tokens = {opt.policy};
  }

  const check::DiffHarness harness{check::CheckConfig::all(opt.stride)};

  if (!opt.replayFile.empty()) {
    std::ifstream is(opt.replayFile);
    if (!is) {
      std::cerr << "sps_fuzz: cannot read " << opt.replayFile << "\n";
      return 2;
    }
    check::FuzzCase c;
    try {
      c = check::readRepro(is);
    } catch (const sps::InputError& e) {
      std::cerr << "sps_fuzz: " << opt.replayFile << ": " << e.what() << "\n";
      return 2;
    }
    check::DiffOutcome outcome;
    if (c.fedShards > 0) {
      // Federated repros route through the federation differential.
      outcome = fed::diffFederated(c, check::CheckConfig::all(opt.stride));
    } else {
      outcome = harness.diff(c);
      // The streamed lane replays too, so ingest-boundary repros reproduce;
      // the chop seed derives from --seed as in the fuzz loop.
      if (outcome.ok()) outcome = harness.diffStreamed(c, opt.seed);
    }
    std::cout << opt.replayFile << ": " << c.trace.jobs.size() << " jobs, "
              << c.policyToken
              << (c.fedShards > 0
                      ? ", fed " + std::to_string(c.fedShards) + "x" +
                            c.fedRouter
                      : "")
              << ", " << (outcome.ok() ? "clean" : "FAILING") << "\n";
    if (!outcome.violation.empty())
      std::cerr << "  violation: " << outcome.violation << "\n";
    if (!outcome.divergence.empty())
      std::cerr << "  divergence: " << outcome.divergence << "\n";
    return outcome.ok() ? 0 : 1;
  }

  if (!opt.dumpFile.empty()) {
    const check::FuzzCase c = check::makeFuzzCase(opt.seed, tokens.front());
    std::ofstream os(opt.dumpFile);
    if (!os) {
      std::cerr << "sps_fuzz: cannot write " << opt.dumpFile << "\n";
      return 2;
    }
    check::writeRepro(os, c);
    const check::DiffOutcome outcome = harness.diff(c);
    std::cout << "wrote " << opt.dumpFile << " (" << c.trace.jobs.size()
              << " jobs, " << c.policyToken << ", diff "
              << (outcome.ok() ? "clean" : "FAILING") << ")\n";
    return 0;
  }

  SplitMix64 seeder(opt.seed);
  std::size_t diffs = 0;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < opt.runs; ++i) {
    const std::uint64_t caseSeed = seeder.next();
    for (const std::string& token : tokens) {
      check::FuzzCase c = check::makeFuzzCase(caseSeed, token);
      check::DiffOutcome outcome = harness.diff(c);
      ++diffs;
      if (!outcome.ok()) {
        ++failures;
        std::cerr << "FAIL iter " << i << " seed " << caseSeed << " policy "
                  << token << "\n";
        const check::FuzzCase small = harness.shrink(c, opt.shrinkRuns);
        emitRepro(opt, small, caseSeed, harness.diff(small));
        continue;
      }
      // Ingest-boundary lane: the same case replayed through the streaming
      // API in seeded coarse segments must match its batch schedule bit for
      // bit under both kernel modes. Streamed failures are emitted unshrunk
      // (the minimizer's oracle is the kernel diff, not this one); --replay
      // runs this lane too, with the case seed derived from --seed.
      outcome = harness.diffStreamed(c, caseSeed);
      ++diffs;
      if (!outcome.ok()) {
        ++failures;
        std::cerr << "FAIL (streamed) iter " << i << " seed " << caseSeed
                  << " policy " << token << "\n";
        emitRepro(opt, c, caseSeed, outcome);
        continue;
      }
      // Federation lane: the same case partitioned across a seeded shard
      // count and router must equal its per-shard single-cluster replays
      // bit for bit (live run + conservation audit + recorded-router
      // replay + batch comparison, both kernel modes). Failures shrink
      // with the federation differential as the minimizer's oracle.
      check::FuzzCase f = c;
      SplitMix64 fedMix(caseSeed ^ 0x9e3779b97f4a7c15ull);
      f.fedShards = 1 + static_cast<std::uint32_t>(fedMix.next() % 4);
      f.fedRouter = (fedMix.next() & 1) != 0 ? "least-loaded" : "hash";
      const std::uint64_t delayPick = fedMix.next() % 3;
      f.fedDelay = delayPick == 0 ? 0 : delayPick == 1 ? 30 : 3600;
      const check::CheckConfig checks = check::CheckConfig::all(opt.stride);
      outcome = fed::diffFederated(f, checks);
      ++diffs;
      if (outcome.ok()) continue;
      ++failures;
      std::cerr << "FAIL (federated) iter " << i << " seed " << caseSeed
                << " policy " << token << " shards " << f.fedShards
                << " router " << f.fedRouter << " delay " << f.fedDelay
                << "\n";
      const check::FuzzCase small = check::DiffHarness::shrinkWith(
          f,
          [&checks](const check::FuzzCase& candidate) {
            return !fed::diffFederated(candidate, checks).ok();
          },
          opt.shrinkRuns);
      emitRepro(opt, small, caseSeed, fed::diffFederated(small, checks));
    }
    if (!opt.quiet && (i + 1) % 25 == 0)
      std::cout << "iter " << (i + 1) << "/" << opt.runs << ": " << diffs
                << " diffs, " << failures << " failures\n";
  }

  if (failures != 0) {
    std::cerr << "sps_fuzz: " << failures << "/" << diffs
              << " diffs failed (repros in " << opt.outDir << ")\n";
    return 1;
  }
  if (!opt.quiet)
    std::cout << "sps_fuzz: " << diffs << " diffs clean ("
              << tokens.size() << " policies x " << opt.runs
              << " iterations, both kernel modes, oracle stride "
              << opt.stride << ")\n";
  return 0;
}
